//! Compact binary on-disk format for [`ModelArtifact`].
//!
//! Serving hosts should boot from a file, not by replaying a training
//! checkpoint restore: the JSON checkpoint carries optimiser moments,
//! scheduler queues, and RNG state the deployment side never reads, and
//! parsing it costs a full session rebuild. This module is the
//! deployment-shaped alternative — exactly the artifact fields, encoded
//! through the workspace-wide little-endian [`hf_fedsim::wire`]
//! primitives, floats as raw IEEE-754 bits so a reload is **bit-identical**
//! to the exported artifact.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic       b"HFAB"
//! container   u16   BINFMT_VERSION (1)
//! schema      u32   ARTIFACT_VERSION the payload snapshots
//! sections    tag:u8  len:u64  payload:[u8; len]   (repeated until EOF)
//! ```
//!
//! Version 1 requires each of the six sections (`meta`, `tables`,
//! `thetas`, `users`, `popularity`, `fallback`) exactly once, in any
//! order; unknown tags and duplicates are errors. Every count is
//! validated against `meta` (and against the buffer length *before*
//! allocating), so hostile inputs fail with [`ServeError::Artifact`]
//! instead of panicking or over-allocating.

use crate::artifact::{ModelArtifact, SoloModel, UserRecord, ARTIFACT_VERSION};
use crate::ServeError;
use hetefedrec_core::config::TierDims;
use hf_dataset::Tier;
use hf_fedsim::wire::{Reader, Writer};
use hf_models::{Ffn, ModelKind};
use hf_tensor::Matrix;
use std::collections::HashMap;

/// File magic: "HeteFedrec Artifact Binary".
const MAGIC: &[u8; 4] = b"HFAB";

/// Container format version this module writes and the only one it reads.
pub const BINFMT_VERSION: u16 = 1;

/// Section tags (v1: all mandatory, each exactly once).
const SEC_META: u8 = 1;
const SEC_TABLES: u8 = 2;
const SEC_THETAS: u8 = 3;
const SEC_USERS: u8 = 4;
const SEC_POPULARITY: u8 = 5;
const SEC_FALLBACK: u8 = 6;

fn err(msg: impl Into<String>) -> ServeError {
    ServeError::Artifact(msg.into())
}

/// Encodes an artifact into the binary container.
pub fn encode(a: &ModelArtifact) -> Vec<u8> {
    let mut out = Writer::with_capacity(64 + 4 * a.tables.iter().map(Matrix::len).sum::<usize>());
    out.put_bytes(MAGIC);
    out.put_u16_le(BINFMT_VERSION);
    out.put_u32_le(ARTIFACT_VERSION as u32);

    let section = |tag: u8, payload: Writer, out: &mut Writer| {
        out.put_u8(tag);
        out.put_u64_le(payload.len() as u64);
        out.put_bytes(payload.as_slice());
    };

    // meta
    let mut w = Writer::new();
    w.put_u8(model_tag(a.model));
    w.put_u8(a.standalone as u8);
    for tier in Tier::ALL {
        w.put_u32_le(a.dims.dim(tier) as u32);
    }
    w.put_u64_le(a.num_items as u64);
    w.put_u64_le(a.users.len() as u64);
    section(SEC_META, w, &mut out);

    // tables
    let mut w = Writer::new();
    for table in &a.tables {
        put_matrix(&mut w, table);
    }
    section(SEC_TABLES, w, &mut out);

    // thetas
    let mut w = Writer::new();
    for theta in &a.thetas {
        put_ffn(&mut w, theta);
    }
    section(SEC_THETAS, w, &mut out);

    // users
    let mut w = Writer::new();
    for user in &a.users {
        w.put_u8(user.tier.index() as u8);
        w.put_u32_le(user.emb.len() as u32);
        for &x in &user.emb {
            w.put_f32_le(x);
        }
        w.put_u32_le(user.history.len() as u32);
        for &item in &user.history {
            w.put_u32_le(item);
        }
        match &user.solo {
            None => w.put_u8(0),
            Some(solo) => {
                w.put_u8(1);
                put_ffn(&mut w, &solo.theta);
                // Deterministic row order: the HashMap iteration order must
                // not leak into the file bytes.
                let mut rows: Vec<(&u32, &Vec<f32>)> = solo.rows.iter().collect();
                rows.sort_by_key(|(&item, _)| item);
                w.put_u32_le(rows.len() as u32);
                for (&item, row) in rows {
                    w.put_u32_le(item);
                    w.put_u32_le(row.len() as u32);
                    for &x in row {
                        w.put_f32_le(x);
                    }
                }
            }
        }
    }
    section(SEC_USERS, w, &mut out);

    // popularity
    let mut w = Writer::new();
    for &count in &a.popularity {
        w.put_u32_le(count);
    }
    section(SEC_POPULARITY, w, &mut out);

    // fallback
    let mut w = Writer::new();
    for f in &a.fallback {
        w.put_u32_le(f.len() as u32);
        for &x in f {
            w.put_f32_le(x);
        }
    }
    section(SEC_FALLBACK, w, &mut out);

    out.into_vec()
}

/// Decodes the binary container, validating every section against `meta`.
pub fn decode(buf: &[u8]) -> Result<ModelArtifact, ServeError> {
    let mut r = Reader::new(buf);
    let magic = r.get_bytes(4).ok_or_else(|| err("truncated header"))?;
    if magic != MAGIC {
        return Err(err("not an artifact file (bad magic)"));
    }
    let container = r
        .get_u16_le()
        .ok_or_else(|| err("truncated container version"))?;
    if container != BINFMT_VERSION {
        return Err(err(format!(
            "unsupported container version {container} (this reader speaks {BINFMT_VERSION})"
        )));
    }
    let schema = r.get_u32_le().ok_or_else(|| err("truncated schema"))? as u64;
    if schema != ARTIFACT_VERSION {
        return Err(err(format!(
            "artifact schema v{schema} not supported (want v{ARTIFACT_VERSION})"
        )));
    }

    let mut sections: [Option<&[u8]>; 7] = [None; 7];
    while r.remaining() > 0 {
        let tag = r.get_u8().ok_or_else(|| err("truncated section tag"))?;
        let len = r
            .get_u64_le()
            .ok_or_else(|| err("truncated section length"))? as usize;
        let payload = r
            .get_bytes(len)
            .ok_or_else(|| err(format!("section {tag} claims {len} bytes past end of file")))?;
        let slot = sections
            .get_mut(tag as usize)
            .filter(|_| (SEC_META..=SEC_FALLBACK).contains(&tag))
            .ok_or_else(|| err(format!("unknown section tag {tag}")))?;
        if slot.replace(payload).is_some() {
            return Err(err(format!("duplicate section tag {tag}")));
        }
    }
    let section = |tag: u8, name: &str| {
        sections[tag as usize].ok_or_else(|| err(format!("missing `{name}` section")))
    };

    // meta
    let mut m = Reader::new(section(SEC_META, "meta")?);
    let meta = (|| {
        let model = model_from_tag(m.get_u8()?)?;
        let standalone = match m.get_u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let s = m.get_u32_le()? as usize;
        let md = m.get_u32_le()? as usize;
        let l = m.get_u32_le()? as usize;
        if !(s > 0 && s < md && md < l) {
            return None;
        }
        let num_items = m.get_u64_le()? as usize;
        let num_users = m.get_u64_le()? as usize;
        if m.remaining() != 0 {
            return None;
        }
        Some((
            model,
            standalone,
            TierDims::new(s, md, l),
            num_items,
            num_users,
        ))
    })()
    .ok_or_else(|| err("`meta` section is malformed"))?;
    let (model, standalone, dims, num_items, num_users) = meta;

    // tables
    let mut t = Reader::new(section(SEC_TABLES, "tables")?);
    let mut tables = Vec::with_capacity(3);
    for tier in Tier::ALL {
        let table = get_matrix(&mut t)
            .ok_or_else(|| err(format!("`tables` section is malformed at {tier:?}")))?;
        if table.rows() != num_items || table.cols() != dims.dim(tier) {
            return Err(err(format!(
                "{tier:?} table is {}x{}, expected {}x{}",
                table.rows(),
                table.cols(),
                num_items,
                dims.dim(tier)
            )));
        }
        tables.push(table);
    }
    if t.remaining() != 0 {
        return Err(err("`tables` section has trailing bytes"));
    }
    let tables: [Matrix; 3] = tables.try_into().expect("three tables");

    // thetas
    let mut t = Reader::new(section(SEC_THETAS, "thetas")?);
    let mut thetas = Vec::with_capacity(3);
    for tier in Tier::ALL {
        let theta = get_ffn(&mut t)
            .ok_or_else(|| err(format!("`thetas` section is malformed at {tier:?}")))?;
        thetas.push(theta);
    }
    if t.remaining() != 0 {
        return Err(err("`thetas` section has trailing bytes"));
    }
    let thetas: [Ffn; 3] = thetas.try_into().expect("three predictors");

    // users
    let mut u = Reader::new(section(SEC_USERS, "users")?);
    let mut users = Vec::with_capacity(num_users.min(u.remaining() / 10 + 1));
    for user in 0..num_users {
        let record = get_user(&mut u, &dims)
            .ok_or_else(|| err(format!("`users` section is malformed at user {user}")))?;
        users.push(record);
    }
    if u.remaining() != 0 {
        return Err(err("`users` section has trailing bytes"));
    }

    // popularity
    let mut p = Reader::new(section(SEC_POPULARITY, "popularity")?);
    let popularity = p
        .get_u32_vec(num_items)
        .filter(|_| p.remaining() == 0)
        .ok_or_else(|| err("`popularity` section is malformed"))?;

    // fallback
    let mut f = Reader::new(section(SEC_FALLBACK, "fallback")?);
    let mut fallback = Vec::with_capacity(3);
    for tier in Tier::ALL {
        let v = (|| {
            let n = f.get_u32_le()? as usize;
            if n != dims.dim(tier) {
                return None;
            }
            f.get_f32_vec(n)
        })()
        .ok_or_else(|| err(format!("`fallback` section is malformed at {tier:?}")))?;
        fallback.push(v);
    }
    if f.remaining() != 0 {
        return Err(err("`fallback` section has trailing bytes"));
    }
    let fallback: [Vec<f32>; 3] = fallback.try_into().expect("three fallbacks");

    Ok(ModelArtifact {
        model,
        dims,
        standalone,
        num_items,
        tables,
        thetas,
        users,
        popularity,
        fallback,
    })
}

fn model_tag(model: ModelKind) -> u8 {
    match model {
        ModelKind::Ncf => 0,
        ModelKind::LightGcn => 1,
    }
}

fn model_from_tag(tag: u8) -> Option<ModelKind> {
    match tag {
        0 => Some(ModelKind::Ncf),
        1 => Some(ModelKind::LightGcn),
        _ => None,
    }
}

fn put_matrix(w: &mut Writer, m: &Matrix) {
    w.put_u64_le(m.rows() as u64);
    w.put_u32_le(m.cols() as u32);
    for &x in m.as_slice() {
        w.put_f32_le(x);
    }
}

fn get_matrix(r: &mut Reader) -> Option<Matrix> {
    let rows = r.get_u64_le()? as usize;
    let cols = r.get_u32_le()? as usize;
    let data = r.get_f32_vec(rows.checked_mul(cols)?)?;
    Some(Matrix::from_vec(rows, cols, data))
}

fn put_ffn(w: &mut Writer, ffn: &Ffn) {
    let dims = ffn.dims();
    w.put_u32_le(dims.len() as u32);
    for &d in dims {
        w.put_u32_le(d as u32);
    }
    let flat = ffn.to_flat();
    w.put_u64_le(flat.len() as u64);
    for &x in &flat {
        w.put_f32_le(x);
    }
}

fn get_ffn(r: &mut Reader) -> Option<Ffn> {
    let ndims = r.get_u32_le()? as usize;
    if !(2..=16).contains(&ndims) {
        return None; // no predictor in this workspace is deeper
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = r.get_u32_le()? as usize;
        if d == 0 {
            return None;
        }
        dims.push(d);
    }
    let flat_len = r.get_u64_le()? as usize;
    // `Ffn::from_flat` panics on a length mismatch; check first.
    let expect: usize = dims.windows(2).map(|w| w[1] * w[0] + w[1]).sum();
    if flat_len != expect {
        return None;
    }
    let flat = r.get_f32_vec(flat_len)?;
    Some(Ffn::from_flat(&dims, &flat))
}

fn get_user(r: &mut Reader, dims: &TierDims) -> Option<UserRecord> {
    let tier = *Tier::ALL.get(r.get_u8()? as usize)?;
    let emb_len = r.get_u32_le()? as usize;
    if emb_len != dims.dim(tier) {
        return None;
    }
    let emb = r.get_f32_vec(emb_len)?;
    let history_len = r.get_u32_le()? as usize;
    let history = r.get_u32_vec(history_len)?;
    let solo = match r.get_u8()? {
        0 => None,
        1 => {
            let theta = get_ffn(r)?;
            let n_rows = r.get_u32_le()? as usize;
            let mut rows = HashMap::with_capacity(n_rows.min(r.remaining() / 8 + 1));
            for _ in 0..n_rows {
                let item = r.get_u32_le()?;
                let width = r.get_u32_le()? as usize;
                if width != dims.dim(tier) {
                    return None;
                }
                rows.insert(item, r.get_f32_vec(width)?);
            }
            Some(SoloModel { rows, theta })
        }
        _ => return None,
    };
    Some(UserRecord {
        tier,
        emb,
        history,
        solo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExportArtifact, RecommendRequest, RecommenderBuilder};
    use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
    use hf_dataset::{SplitDataset, SyntheticConfig};

    fn artifact(strategy: Strategy, model: ModelKind) -> ModelArtifact {
        let data = SyntheticConfig::tiny().generate(13);
        let split = SplitDataset::paper_split(&data, 13);
        let mut s = SessionBuilder::new(TrainConfig::test_default(model), strategy, split)
            .eval_every(0)
            .build()
            .expect("valid config");
        s.run_epoch();
        s.export_artifact()
    }

    #[test]
    fn binary_roundtrip_is_bit_identical() {
        for (strategy, model) in [
            (Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf),
            (Strategy::HeteFedRec(Ablation::FULL), ModelKind::LightGcn),
            (Strategy::Standalone, ModelKind::Ncf),
        ] {
            let a = artifact(strategy, model);
            let bytes = a.to_bytes();
            let b = ModelArtifact::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{model:?}/{strategy:?}: {e}"));
            // Encoding the reload reproduces the file bytes exactly —
            // stronger than field-by-field equality, and it pins the
            // deterministic solo-row ordering.
            assert_eq!(bytes, b.to_bytes(), "{model:?}: reload changed bytes");
            // And the reloaded artifact serves bit-identical rankings.
            let ra = RecommenderBuilder::new(a).default_k(6).build().unwrap();
            let rb = RecommenderBuilder::new(b).default_k(6).build().unwrap();
            for user in 0..ra.artifact().num_users() {
                let x = ra.recommend(&RecommendRequest::new(user));
                let y = rb.recommend(&RecommendRequest::new(user));
                assert_eq!(x, y, "user {user}");
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let a = artifact(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        let dir = std::env::temp_dir().join(format!("hf_binfmt_test_{}", std::process::id()));
        let path = dir.join("nested").join("model.hfa");
        a.save_file(&path).expect("saved");
        let b = ModelArtifact::load_file(&path).expect("loaded");
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert!(ModelArtifact::load_file(dir.join("missing.hfa")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncations_and_mutations_never_panic() {
        let a = artifact(Strategy::Standalone, ModelKind::Ncf);
        let bytes = a.to_bytes();
        // Every prefix must fail cleanly (the full buffer is the only
        // valid length).
        for cut in [0, 3, 4, 6, 10, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ModelArtifact::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        // Header corruptions produce typed errors.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ModelArtifact::from_bytes(&bad).is_err(), "bad magic");
        let mut bad = bytes.clone();
        bad[4] = 0xFF; // container version
        assert!(ModelArtifact::from_bytes(&bad).is_err(), "bad version");
        let mut bad = bytes.clone();
        bad[6] = 0xFF; // schema version
        assert!(ModelArtifact::from_bytes(&bad).is_err(), "bad schema");
    }
}
