//! Compact binary on-disk format for [`ModelArtifact`].
//!
//! Serving hosts should boot from a file, not by replaying a training
//! checkpoint restore: the JSON checkpoint carries optimiser moments,
//! scheduler queues, and RNG state the deployment side never reads, and
//! parsing it costs a full session rebuild. This module is the
//! deployment-shaped alternative — exactly the artifact fields, encoded
//! through the workspace-wide little-endian [`hf_fedsim::wire`]
//! primitives, floats as raw IEEE-754 bits so a reload is **bit-identical**
//! to the exported artifact.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic       b"HFAB"
//! container   u16   BINFMT_VERSION (2; v1 files still decode)
//! schema      u32   ARTIFACT_VERSION the payload snapshots
//! sections    tag:u8  len:u64  payload:[u8; len]   (repeated until EOF)
//! ```
//!
//! Both container versions require each of the six sections (`meta`,
//! `tables`, `thetas`, `users`, `popularity`, `fallback`) exactly once,
//! in any order; unknown tags and duplicates are errors. Every count and
//! section length is validated against `meta` and against the remaining
//! buffer/file size *before* any payload allocation, so hostile inputs
//! fail with [`ServeError::Artifact`] instead of panicking or
//! over-allocating.
//!
//! **Version 2 is offset-indexed** so sections can be mapped lazily by
//! [`crate::lazy`]:
//!
//! * `users` — a fixed-width directory (`num_users` × `(off: u64,
//!   len: u32)`, offsets relative to the payload block that follows the
//!   directory) and then the per-record payloads. One user decodes with
//!   two bounded reads and no scan over earlier records.
//! * `tables` — a per-tier directory (`3 × (off: u64, len: u64,
//!   rows: u64, cols: u32)`) then the matrix payloads, so a reader can
//!   validate shapes and decode one tier on first touch.
//! * `thetas` — a per-tier directory (`3 × (off: u64, len: u64)`) then
//!   the predictor payloads.
//!
//! Directories are canonical: entries must be contiguous, in tier/user
//! order, and cover the payload block exactly, which preserves the
//! `encode(decode(b)) == b` round-trip property. `meta`, `popularity`,
//! and `fallback` payloads are unchanged from v1. Version 1 documents
//! (no directories) still load via the eager whole-section path.

use crate::artifact::{ModelArtifact, SoloModel, UserRecord, UserStore, ARTIFACT_VERSION};
use crate::ServeError;
use hetefedrec_core::config::TierDims;
use hf_dataset::Tier;
use hf_fedsim::wire::{Reader, Writer};
use hf_models::{Ffn, ModelKind};
use hf_tensor::Matrix;
use std::collections::HashMap;

/// File magic: "HeteFedrec Artifact Binary".
pub(crate) const MAGIC: &[u8; 4] = b"HFAB";

/// Container format version this module writes. The reader also accepts
/// version-1 files (PR 7's whole-section layout) via the eager path.
pub const BINFMT_VERSION: u16 = 2;

/// Oldest container version the reader still accepts.
pub const MIN_BINFMT_VERSION: u16 = 1;

/// Section tags (all mandatory, each exactly once).
pub(crate) const SEC_META: u8 = 1;
pub(crate) const SEC_TABLES: u8 = 2;
pub(crate) const SEC_THETAS: u8 = 3;
pub(crate) const SEC_USERS: u8 = 4;
pub(crate) const SEC_POPULARITY: u8 = 5;
pub(crate) const SEC_FALLBACK: u8 = 6;

/// Bytes before the first section: magic + container + schema.
pub(crate) const HEADER_LEN: u64 = 4 + 2 + 4;
/// Bytes of one section header: tag + length.
pub(crate) const SECTION_HEADER_LEN: u64 = 1 + 8;
/// Bytes of one `users` directory entry: `off: u64, len: u32`.
pub(crate) const USER_DIR_ENTRY: u64 = 8 + 4;
/// Bytes of one `tables` directory entry: `off, len, rows: u64, cols: u32`.
pub(crate) const TABLE_DIR_ENTRY: u64 = 8 + 8 + 8 + 4;
/// Bytes of one `thetas` directory entry: `off: u64, len: u64`.
pub(crate) const THETA_DIR_ENTRY: u64 = 8 + 8;

pub(crate) fn err(msg: impl Into<String>) -> ServeError {
    ServeError::Artifact(msg.into())
}

/// Decoded `meta` section.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Meta {
    pub model: ModelKind,
    pub standalone: bool,
    pub dims: TierDims,
    pub num_items: usize,
    pub num_users: usize,
}

/// One `tables` directory entry (offsets relative to the payload block).
#[derive(Clone, Copy, Debug)]
pub(crate) struct TableDirEntry {
    pub off: u64,
    pub len: u64,
    pub rows: u64,
    pub cols: u32,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encodes an artifact into the current (v2, offset-indexed) container.
pub fn encode(a: &ModelArtifact) -> Vec<u8> {
    let mut out = Writer::with_capacity(
        64 + 4
            * (0..3)
                .map(|t| {
                    let (rows, cols) = a.table_dims(Tier::ALL[t]);
                    rows * cols
                })
                .sum::<usize>(),
    );
    put_header(&mut out, BINFMT_VERSION);
    section(SEC_META, encode_meta(a), &mut out);
    section(SEC_TABLES, encode_tables_v2(a), &mut out);
    section(SEC_THETAS, encode_thetas_v2(a), &mut out);
    section(SEC_USERS, encode_users_v2(a), &mut out);
    section(SEC_POPULARITY, encode_popularity(a), &mut out);
    section(SEC_FALLBACK, encode_fallback(a), &mut out);
    out.into_vec()
}

/// Encodes an artifact in the legacy v1 container (whole-section
/// payloads, no directories). Kept for back-compat fixtures and tests;
/// new files should use [`encode`].
pub fn encode_v1(a: &ModelArtifact) -> Vec<u8> {
    let mut out = Writer::new();
    put_header(&mut out, 1);
    section(SEC_META, encode_meta(a), &mut out);

    let mut w = Writer::new();
    for tier in Tier::ALL {
        put_matrix(&mut w, a.table(tier));
    }
    section(SEC_TABLES, w, &mut out);

    let mut w = Writer::new();
    for tier in Tier::ALL {
        put_ffn(&mut w, a.theta(tier));
    }
    section(SEC_THETAS, w, &mut out);

    let mut w = Writer::new();
    for u in 0..a.num_users() {
        let user = a.user(u).expect("user in range");
        put_user(&mut w, &user);
    }
    section(SEC_USERS, w, &mut out);

    section(SEC_POPULARITY, encode_popularity(a), &mut out);
    section(SEC_FALLBACK, encode_fallback(a), &mut out);
    out.into_vec()
}

fn put_header(out: &mut Writer, container: u16) {
    out.put_bytes(MAGIC);
    out.put_u16_le(container);
    out.put_u32_le(ARTIFACT_VERSION as u32);
}

fn section(tag: u8, payload: Writer, out: &mut Writer) {
    out.put_u8(tag);
    out.put_u64_le(payload.len() as u64);
    out.put_bytes(payload.as_slice());
}

fn encode_meta(a: &ModelArtifact) -> Writer {
    encode_meta_parts(
        a.model(),
        a.is_standalone(),
        &a.dims(),
        a.num_items(),
        a.num_users(),
    )
}

/// `meta` payload from loose parts (shared with the streaming
/// synthesizer, which has no artifact to point at).
pub(crate) fn encode_meta_parts(
    model: ModelKind,
    standalone: bool,
    dims: &TierDims,
    num_items: usize,
    num_users: usize,
) -> Writer {
    let mut w = Writer::new();
    w.put_u8(model_tag(model));
    w.put_u8(standalone as u8);
    for tier in Tier::ALL {
        w.put_u32_le(dims.dim(tier) as u32);
    }
    w.put_u64_le(num_items as u64);
    w.put_u64_le(num_users as u64);
    w
}

fn encode_tables_v2(a: &ModelArtifact) -> Writer {
    let mut payloads: Vec<Writer> = Vec::with_capacity(3);
    for tier in Tier::ALL {
        let mut w = Writer::new();
        put_matrix(&mut w, a.table(tier));
        payloads.push(w);
    }
    // rows/cols ride in the directory so shapes validate without decoding.
    let mut w = Writer::new();
    let mut off = 0u64;
    for (t, p) in payloads.iter().enumerate() {
        let table = a.table(Tier::ALL[t]);
        w.put_u64_le(off);
        w.put_u64_le(p.len() as u64);
        w.put_u64_le(table.rows() as u64);
        w.put_u32_le(table.cols() as u32);
        off += p.len() as u64;
    }
    for p in payloads {
        w.put_bytes(p.as_slice());
    }
    w
}

fn encode_thetas_v2(a: &ModelArtifact) -> Writer {
    let mut payloads: Vec<Writer> = Vec::with_capacity(3);
    for tier in Tier::ALL {
        let mut w = Writer::new();
        put_ffn(&mut w, a.theta(tier));
        payloads.push(w);
    }
    let mut w = Writer::new();
    let mut off = 0u64;
    for p in &payloads {
        w.put_u64_le(off);
        w.put_u64_le(p.len() as u64);
        off += p.len() as u64;
    }
    for p in payloads {
        w.put_bytes(p.as_slice());
    }
    w
}

fn encode_users_v2(a: &ModelArtifact) -> Writer {
    // Directory first, payloads after; record lengths are only known
    // once encoded, so encode into a payload writer and track entries.
    let mut dir: Vec<(u64, u32)> = Vec::with_capacity(a.num_users());
    let mut payload = Writer::new();
    for u in 0..a.num_users() {
        let user = a.user(u).expect("user in range");
        let start = payload.len() as u64;
        put_user(&mut payload, &user);
        let len = payload.len() as u64 - start;
        assert!(len <= u32::MAX as u64, "user record over 4 GiB");
        dir.push((start, len as u32));
    }
    let mut w = Writer::with_capacity(dir.len() * USER_DIR_ENTRY as usize + payload.len());
    for (off, len) in dir {
        w.put_u64_le(off);
        w.put_u32_le(len);
    }
    w.put_bytes(payload.as_slice());
    w
}

fn encode_popularity(a: &ModelArtifact) -> Writer {
    let mut w = Writer::with_capacity(4 * a.num_items());
    for item in 0..a.num_items() {
        w.put_u32_le(a.popularity(item as u32));
    }
    w
}

fn encode_fallback(a: &ModelArtifact) -> Writer {
    let mut w = Writer::new();
    for tier in Tier::ALL {
        let f = a.fallback(tier);
        w.put_u32_le(f.len() as u32);
        for &x in f {
            w.put_f32_le(x);
        }
    }
    w
}

/// Encodes one user record (shared between v1 and v2 — v2 just indexes
/// the same bytes).
pub(crate) fn put_user(w: &mut Writer, user: &UserRecord) {
    w.put_u8(user.tier.index() as u8);
    w.put_u32_le(user.emb.len() as u32);
    for &x in &user.emb {
        w.put_f32_le(x);
    }
    w.put_u32_le(user.history.len() as u32);
    for &item in &user.history {
        w.put_u32_le(item);
    }
    match &user.solo {
        None => w.put_u8(0),
        Some(solo) => {
            w.put_u8(1);
            put_ffn(w, &solo.theta);
            // Deterministic row order: the HashMap iteration order must
            // not leak into the file bytes.
            let mut rows: Vec<(&u32, &Vec<f32>)> = solo.rows.iter().collect();
            rows.sort_by_key(|(&item, _)| item);
            w.put_u32_le(rows.len() as u32);
            for (&item, row) in rows {
                w.put_u32_le(item);
                w.put_u32_le(row.len() as u32);
                for &x in row {
                    w.put_f32_le(x);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding (whole-buffer ingestion; the lazy file path is crate::lazy)
// ---------------------------------------------------------------------

/// Parses the file header, returning the container version.
pub(crate) fn parse_header(r: &mut Reader) -> Result<u16, ServeError> {
    let magic = r.get_bytes(4).ok_or_else(|| err("truncated header"))?;
    if magic != MAGIC {
        return Err(err("not an artifact file (bad magic)"));
    }
    let container = r
        .get_u16_le()
        .ok_or_else(|| err("truncated container version"))?;
    if !(MIN_BINFMT_VERSION..=BINFMT_VERSION).contains(&container) {
        return Err(err(format!(
            "unsupported container version {container} (this reader speaks \
             {MIN_BINFMT_VERSION}..={BINFMT_VERSION})"
        )));
    }
    let schema = r.get_u32_le().ok_or_else(|| err("truncated schema"))? as u64;
    if schema != ARTIFACT_VERSION {
        return Err(err(format!(
            "artifact schema v{schema} not supported (want v{ARTIFACT_VERSION})"
        )));
    }
    Ok(container)
}

/// Walks the section table, validating each declared length against the
/// bytes actually remaining *before* touching the payload — a section
/// claiming `u64::MAX` bytes fails with a typed error here, never an
/// allocation or a panic.
fn split_sections<'a>(r: &mut Reader<'a>) -> Result<[Option<&'a [u8]>; 7], ServeError> {
    let mut sections: [Option<&[u8]>; 7] = [None; 7];
    while r.remaining() > 0 {
        let tag = r.get_u8().ok_or_else(|| err("truncated section tag"))?;
        let declared = r
            .get_u64_le()
            .ok_or_else(|| err("truncated section length"))?;
        let len = usize::try_from(declared)
            .ok()
            .filter(|&n| n <= r.remaining())
            .ok_or_else(|| {
                err(format!(
                    "section {tag} claims {declared} bytes but only {} remain",
                    r.remaining()
                ))
            })?;
        let payload = r.get_bytes(len).expect("length validated above");
        let slot = sections
            .get_mut(tag as usize)
            .filter(|_| (SEC_META..=SEC_FALLBACK).contains(&tag))
            .ok_or_else(|| err(format!("unknown section tag {tag}")))?;
        if slot.replace(payload).is_some() {
            return Err(err(format!("duplicate section tag {tag}")));
        }
    }
    Ok(sections)
}

/// Decodes the `meta` payload.
pub(crate) fn parse_meta(payload: &[u8]) -> Result<Meta, ServeError> {
    let mut m = Reader::new(payload);
    (|| {
        let model = model_from_tag(m.get_u8()?)?;
        let standalone = match m.get_u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let s = m.get_u32_le()? as usize;
        let md = m.get_u32_le()? as usize;
        let l = m.get_u32_le()? as usize;
        if !(s > 0 && s < md && md < l) {
            return None;
        }
        let num_items = usize::try_from(m.get_u64_le()?).ok()?;
        let num_users = usize::try_from(m.get_u64_le()?).ok()?;
        if m.remaining() != 0 {
            return None;
        }
        Some(Meta {
            model,
            standalone,
            dims: TierDims::new(s, md, l),
            num_items,
            num_users,
        })
    })()
    .ok_or_else(|| err("`meta` section is malformed"))
}

/// Parses and validates the v2 `tables` directory against the section
/// length and the expected shapes. Entries must be contiguous and cover
/// the payload block exactly (canonical layout).
pub(crate) fn parse_table_dir(
    payload_prefix: &[u8],
    section_len: u64,
    meta: &Meta,
) -> Result<[TableDirEntry; 3], ServeError> {
    let dir_len = 3 * TABLE_DIR_ENTRY;
    if section_len < dir_len {
        return Err(err("`tables` section too short for its directory"));
    }
    let block_len = section_len - dir_len;
    let mut r = Reader::new(payload_prefix);
    let mut entries = [TableDirEntry {
        off: 0,
        len: 0,
        rows: 0,
        cols: 0,
    }; 3];
    let mut cursor = 0u64;
    for (t, e) in entries.iter_mut().enumerate() {
        let tier = Tier::ALL[t];
        *e = (|| {
            Some(TableDirEntry {
                off: r.get_u64_le()?,
                len: r.get_u64_le()?,
                rows: r.get_u64_le()?,
                cols: r.get_u32_le()?,
            })
        })()
        .ok_or_else(|| err("`tables` directory is truncated"))?;
        if e.off != cursor || e.len > block_len - cursor {
            return Err(err(format!(
                "`tables` directory entry for {tier:?} is out of bounds"
            )));
        }
        // put_matrix payload: rows u64 + cols u32 + rows*cols f32s.
        let want = (e.rows)
            .checked_mul(e.cols as u64)
            .and_then(|n| n.checked_mul(4))
            .and_then(|n| n.checked_add(12));
        if want != Some(e.len) {
            return Err(err(format!(
                "`tables` entry for {tier:?} declares {} bytes for a {}x{} matrix",
                e.len, e.rows, e.cols
            )));
        }
        if e.rows != meta.num_items as u64 || e.cols as usize != meta.dims.dim(tier) {
            return Err(err(format!(
                "{tier:?} table is {}x{}, expected {}x{}",
                e.rows,
                e.cols,
                meta.num_items,
                meta.dims.dim(tier)
            )));
        }
        cursor += e.len;
    }
    if cursor != block_len {
        return Err(err("`tables` section has trailing bytes"));
    }
    Ok(entries)
}

/// Parses and validates the v2 `thetas` directory (contiguous, exact
/// coverage).
pub(crate) fn parse_theta_dir(
    payload_prefix: &[u8],
    section_len: u64,
) -> Result<[(u64, u64); 3], ServeError> {
    let dir_len = 3 * THETA_DIR_ENTRY;
    if section_len < dir_len {
        return Err(err("`thetas` section too short for its directory"));
    }
    let block_len = section_len - dir_len;
    let mut r = Reader::new(payload_prefix);
    let mut entries = [(0u64, 0u64); 3];
    let mut cursor = 0u64;
    for (t, e) in entries.iter_mut().enumerate() {
        let off = r
            .get_u64_le()
            .ok_or_else(|| err("`thetas` directory is truncated"))?;
        let len = r
            .get_u64_le()
            .ok_or_else(|| err("`thetas` directory is truncated"))?;
        if off != cursor || len > block_len - cursor {
            return Err(err(format!(
                "`thetas` directory entry for {:?} is out of bounds",
                Tier::ALL[t]
            )));
        }
        *e = (off, len);
        cursor += len;
    }
    if cursor != block_len {
        return Err(err("`thetas` section has trailing bytes"));
    }
    Ok(entries)
}

/// Validates the v2 `users` section framing: the fixed-width directory
/// must fit, and the payload block is whatever follows it. Returns
/// `(directory bytes, payload block bytes)` relative to the section
/// start. Per-record bounds are checked on touch.
pub(crate) fn users_section_split(section_len: u64, meta: &Meta) -> Result<(u64, u64), ServeError> {
    let dir_len = (meta.num_users as u64)
        .checked_mul(USER_DIR_ENTRY)
        .filter(|&d| d <= section_len)
        .ok_or_else(|| {
            err(format!(
                "`users` section too short for a {}-entry directory",
                meta.num_users
            ))
        })?;
    Ok((dir_len, section_len - dir_len))
}

/// Decodes the binary container (either version), validating every
/// section against `meta`. This is the eager path: the whole buffer is
/// parsed into memory. Lazy file-backed loading is
/// [`ModelArtifact::load_file_lazy`].
pub fn decode(buf: &[u8]) -> Result<ModelArtifact, ServeError> {
    let mut r = Reader::new(buf);
    let container = parse_header(&mut r)?;
    let sections = split_sections(&mut r)?;
    let section = |tag: u8, name: &str| {
        sections[tag as usize].ok_or_else(|| err(format!("missing `{name}` section")))
    };

    let meta = parse_meta(section(SEC_META, "meta")?)?;

    let (tables, thetas, users) = if container == 1 {
        decode_params_v1(
            section(SEC_TABLES, "tables")?,
            section(SEC_THETAS, "thetas")?,
            section(SEC_USERS, "users")?,
            &meta,
        )?
    } else {
        decode_params_v2(
            section(SEC_TABLES, "tables")?,
            section(SEC_THETAS, "thetas")?,
            section(SEC_USERS, "users")?,
            &meta,
        )?
    };

    let mut p = Reader::new(section(SEC_POPULARITY, "popularity")?);
    let popularity = p
        .get_u32_vec(meta.num_items)
        .filter(|_| p.remaining() == 0)
        .ok_or_else(|| err("`popularity` section is malformed"))?;

    let fallback = decode_fallback(section(SEC_FALLBACK, "fallback")?, &meta.dims)?;

    Ok(ModelArtifact::assemble(
        meta,
        tables,
        thetas,
        UserStore::Eager(users),
        popularity,
        fallback,
    ))
}

type Params = ([Matrix; 3], [Ffn; 3], Vec<UserRecord>);

fn decode_params_v1(
    tables: &[u8],
    thetas: &[u8],
    users: &[u8],
    meta: &Meta,
) -> Result<Params, ServeError> {
    let mut t = Reader::new(tables);
    let mut out_tables = Vec::with_capacity(3);
    for tier in Tier::ALL {
        let table = get_matrix(&mut t)
            .ok_or_else(|| err(format!("`tables` section is malformed at {tier:?}")))?;
        check_table_shape(&table, tier, meta)?;
        out_tables.push(table);
    }
    if t.remaining() != 0 {
        return Err(err("`tables` section has trailing bytes"));
    }

    let mut t = Reader::new(thetas);
    let mut out_thetas = Vec::with_capacity(3);
    for tier in Tier::ALL {
        let theta = get_ffn(&mut t)
            .ok_or_else(|| err(format!("`thetas` section is malformed at {tier:?}")))?;
        out_thetas.push(theta);
    }
    if t.remaining() != 0 {
        return Err(err("`thetas` section has trailing bytes"));
    }

    let mut u = Reader::new(users);
    let mut out_users = Vec::with_capacity(meta.num_users.min(u.remaining() / 10 + 1));
    for user in 0..meta.num_users {
        let record = get_user(&mut u, &meta.dims)
            .ok_or_else(|| err(format!("`users` section is malformed at user {user}")))?;
        out_users.push(record);
    }
    if u.remaining() != 0 {
        return Err(err("`users` section has trailing bytes"));
    }

    Ok((
        out_tables.try_into().expect("three tables"),
        out_thetas.try_into().expect("three predictors"),
        out_users,
    ))
}

fn decode_params_v2(
    tables: &[u8],
    thetas: &[u8],
    users: &[u8],
    meta: &Meta,
) -> Result<Params, ServeError> {
    // Tables: directory then payloads.
    let dir = parse_table_dir(tables, tables.len() as u64, meta)?;
    let block = &tables[(3 * TABLE_DIR_ENTRY) as usize..];
    let mut out_tables = Vec::with_capacity(3);
    for (t, e) in dir.iter().enumerate() {
        let tier = Tier::ALL[t];
        let mut r = Reader::new(&block[e.off as usize..(e.off + e.len) as usize]);
        let table = get_matrix(&mut r)
            .filter(|_| r.remaining() == 0)
            .ok_or_else(|| err(format!("`tables` payload is malformed at {tier:?}")))?;
        check_table_shape(&table, tier, meta)?;
        out_tables.push(table);
    }

    // Thetas: directory then payloads.
    let dir = parse_theta_dir(thetas, thetas.len() as u64)?;
    let block = &thetas[(3 * THETA_DIR_ENTRY) as usize..];
    let mut out_thetas = Vec::with_capacity(3);
    for (t, &(off, len)) in dir.iter().enumerate() {
        let mut r = Reader::new(&block[off as usize..(off + len) as usize]);
        let theta = get_ffn(&mut r)
            .filter(|_| r.remaining() == 0)
            .ok_or_else(|| {
                err(format!(
                    "`thetas` payload is malformed at {:?}",
                    Tier::ALL[t]
                ))
            })?;
        out_thetas.push(theta);
    }

    // Users: fixed-width directory then record payloads. The eager path
    // walks the directory in order and demands canonical contiguity.
    let (dir_len, payload_len) = users_section_split(users.len() as u64, meta)?;
    let (dir_bytes, payload) = users.split_at(dir_len as usize);
    let mut d = Reader::new(dir_bytes);
    let mut out_users = Vec::with_capacity(meta.num_users.min(payload.len() / 10 + 1));
    let mut cursor = 0u64;
    for user in 0..meta.num_users {
        let off = d.get_u64_le().expect("directory length validated");
        let len = d.get_u32_le().expect("directory length validated") as u64;
        if off != cursor || len > payload_len - cursor {
            return Err(err(format!(
                "`users` directory entry {user} is out of bounds"
            )));
        }
        let mut r = Reader::new(&payload[off as usize..(off + len) as usize]);
        let record = get_user(&mut r, &meta.dims)
            .filter(|_| r.remaining() == 0)
            .ok_or_else(|| err(format!("`users` section is malformed at user {user}")))?;
        out_users.push(record);
        cursor += len;
    }
    if cursor != payload_len {
        return Err(err("`users` section has trailing bytes"));
    }

    Ok((
        out_tables.try_into().expect("three tables"),
        out_thetas.try_into().expect("three predictors"),
        out_users,
    ))
}

fn check_table_shape(table: &Matrix, tier: Tier, meta: &Meta) -> Result<(), ServeError> {
    if table.rows() != meta.num_items || table.cols() != meta.dims.dim(tier) {
        return Err(err(format!(
            "{tier:?} table is {}x{}, expected {}x{}",
            table.rows(),
            table.cols(),
            meta.num_items,
            meta.dims.dim(tier)
        )));
    }
    Ok(())
}

pub(crate) fn decode_fallback(
    payload: &[u8],
    dims: &TierDims,
) -> Result<[Vec<f32>; 3], ServeError> {
    let mut f = Reader::new(payload);
    let mut fallback = Vec::with_capacity(3);
    for tier in Tier::ALL {
        let v = (|| {
            let n = f.get_u32_le()? as usize;
            if n != dims.dim(tier) {
                return None;
            }
            f.get_f32_vec(n)
        })()
        .ok_or_else(|| err(format!("`fallback` section is malformed at {tier:?}")))?;
        fallback.push(v);
    }
    if f.remaining() != 0 {
        return Err(err("`fallback` section has trailing bytes"));
    }
    Ok(fallback.try_into().expect("three fallbacks"))
}

fn model_tag(model: ModelKind) -> u8 {
    match model {
        ModelKind::Ncf => 0,
        ModelKind::LightGcn => 1,
    }
}

pub(crate) fn model_from_tag(tag: u8) -> Option<ModelKind> {
    match tag {
        0 => Some(ModelKind::Ncf),
        1 => Some(ModelKind::LightGcn),
        _ => None,
    }
}

pub(crate) fn put_matrix(w: &mut Writer, m: &Matrix) {
    w.put_u64_le(m.rows() as u64);
    w.put_u32_le(m.cols() as u32);
    for &x in m.as_slice() {
        w.put_f32_le(x);
    }
}

pub(crate) fn get_matrix(r: &mut Reader) -> Option<Matrix> {
    let rows = usize::try_from(r.get_u64_le()?).ok()?;
    let cols = r.get_u32_le()? as usize;
    let data = r.get_f32_vec(rows.checked_mul(cols)?)?;
    Some(Matrix::from_vec(rows, cols, data))
}

pub(crate) fn put_ffn(w: &mut Writer, ffn: &Ffn) {
    let dims = ffn.dims();
    w.put_u32_le(dims.len() as u32);
    for &d in dims {
        w.put_u32_le(d as u32);
    }
    let flat = ffn.to_flat();
    w.put_u64_le(flat.len() as u64);
    for &x in &flat {
        w.put_f32_le(x);
    }
}

pub(crate) fn get_ffn(r: &mut Reader) -> Option<Ffn> {
    let ndims = r.get_u32_le()? as usize;
    if !(2..=16).contains(&ndims) {
        return None; // no predictor in this workspace is deeper
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = r.get_u32_le()? as usize;
        if d == 0 {
            return None;
        }
        dims.push(d);
    }
    let flat_len = usize::try_from(r.get_u64_le()?).ok()?;
    // `Ffn::from_flat` panics on a length mismatch; check first.
    let expect: usize = dims.windows(2).map(|w| w[1] * w[0] + w[1]).sum();
    if flat_len != expect {
        return None;
    }
    let flat = r.get_f32_vec(flat_len)?;
    Some(Ffn::from_flat(&dims, &flat))
}

pub(crate) fn get_user(r: &mut Reader, dims: &TierDims) -> Option<UserRecord> {
    let tier = *Tier::ALL.get(r.get_u8()? as usize)?;
    let emb_len = r.get_u32_le()? as usize;
    if emb_len != dims.dim(tier) {
        return None;
    }
    let emb = r.get_f32_vec(emb_len)?;
    let history_len = r.get_u32_le()? as usize;
    let history = r.get_u32_vec(history_len)?;
    let solo = match r.get_u8()? {
        0 => None,
        1 => {
            let theta = get_ffn(r)?;
            let n_rows = r.get_u32_le()? as usize;
            let mut rows = HashMap::with_capacity(n_rows.min(r.remaining() / 8 + 1));
            for _ in 0..n_rows {
                let item = r.get_u32_le()?;
                let width = r.get_u32_le()? as usize;
                if width != dims.dim(tier) {
                    return None;
                }
                rows.insert(item, r.get_f32_vec(width)?);
            }
            Some(SoloModel { rows, theta })
        }
        _ => return None,
    };
    Some(UserRecord {
        tier,
        emb,
        history,
        solo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExportArtifact, RecommendRequest, RecommenderBuilder};
    use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
    use hf_dataset::{SplitDataset, SyntheticConfig};

    fn artifact(strategy: Strategy, model: ModelKind) -> ModelArtifact {
        let data = SyntheticConfig::tiny().generate(13);
        let split = SplitDataset::paper_split(&data, 13);
        let mut s = SessionBuilder::new(TrainConfig::test_default(model), strategy, split)
            .eval_every(0)
            .build()
            .expect("valid config");
        s.run_epoch();
        s.export_artifact()
    }

    #[test]
    fn binary_roundtrip_is_bit_identical() {
        for (strategy, model) in [
            (Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf),
            (Strategy::HeteFedRec(Ablation::FULL), ModelKind::LightGcn),
            (Strategy::Standalone, ModelKind::Ncf),
        ] {
            let a = artifact(strategy, model);
            let bytes = a.to_bytes();
            let b = ModelArtifact::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{model:?}/{strategy:?}: {e}"));
            // Encoding the reload reproduces the file bytes exactly —
            // stronger than field-by-field equality, and it pins the
            // deterministic solo-row ordering.
            assert_eq!(bytes, b.to_bytes(), "{model:?}: reload changed bytes");
            // And the reloaded artifact serves bit-identical rankings.
            let ra = RecommenderBuilder::new(a).default_k(6).build().unwrap();
            let rb = RecommenderBuilder::new(b).default_k(6).build().unwrap();
            for user in 0..ra.artifact().num_users() {
                let x = ra.recommend(&RecommendRequest::new(user));
                let y = rb.recommend(&RecommendRequest::new(user));
                assert_eq!(x, y, "user {user}");
            }
        }
    }

    #[test]
    fn v1_container_still_decodes_identically() {
        for (strategy, model) in [
            (Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf),
            (Strategy::Standalone, ModelKind::Ncf),
        ] {
            let a = artifact(strategy, model);
            let v1 = encode_v1(&a);
            assert_eq!(v1[4], 1, "v1 container tag");
            let b = ModelArtifact::from_bytes(&v1).expect("v1 decodes");
            // Re-encoding the v1 reload as v2 matches the direct v2 bytes.
            assert_eq!(a.to_bytes(), b.to_bytes(), "{model:?}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let a = artifact(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        let dir = std::env::temp_dir().join(format!("hf_binfmt_test_{}", std::process::id()));
        let path = dir.join("nested").join("model.hfa");
        a.save_file(&path).expect("saved");
        let b = ModelArtifact::load_file(&path).expect("loaded");
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert!(ModelArtifact::load_file(dir.join("missing.hfa")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncations_and_mutations_never_panic() {
        let a = artifact(Strategy::Standalone, ModelKind::Ncf);
        for bytes in [a.to_bytes(), encode_v1(&a)] {
            // Every prefix must fail cleanly (the full buffer is the only
            // valid length).
            for cut in [0, 3, 4, 6, 10, 17, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    ModelArtifact::from_bytes(&bytes[..cut]).is_err(),
                    "cut at {cut} must be rejected"
                );
            }
            // Header corruptions produce typed errors.
            let mut bad = bytes.clone();
            bad[0] = b'X';
            assert!(ModelArtifact::from_bytes(&bad).is_err(), "bad magic");
            let mut bad = bytes.clone();
            bad[4] = 0xFF; // container version
            assert!(ModelArtifact::from_bytes(&bad).is_err(), "bad version");
            let mut bad = bytes.clone();
            bad[6] = 0xFF; // schema version
            assert!(ModelArtifact::from_bytes(&bad).is_err(), "bad schema");
        }
    }

    #[test]
    fn hostile_section_length_fails_before_allocation() {
        // Regression (satellite): a section header claiming u64::MAX
        // bytes must fail with a typed error — validated against the
        // remaining size before any payload is touched or allocated.
        let mut w = Writer::new();
        w.put_bytes(MAGIC);
        w.put_u16_le(BINFMT_VERSION);
        w.put_u32_le(ARTIFACT_VERSION as u32);
        w.put_u8(SEC_META);
        w.put_u64_le(u64::MAX);
        let bytes = w.into_vec();
        let e = ModelArtifact::from_bytes(&bytes).expect_err("hostile length");
        let msg = e.to_string();
        assert!(msg.contains("claims"), "unexpected error: {msg}");

        // Same claim inside a real artifact's section table.
        let a = artifact(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf);
        let mut bytes = a.to_bytes();
        // First section header sits right after the 10-byte file header.
        bytes[11..19].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ModelArtifact::from_bytes(&bytes).is_err());

        // And through the lazy file reader, which *would* allocate a read
        // buffer if the length were trusted.
        let dir = std::env::temp_dir().join(format!("hf_binfmt_hostile_{}", std::process::id()));
        let path = dir.join("hostile.hfa");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            ModelArtifact::load_file_lazy(&path, crate::LazyConfig::default()).is_err(),
            "lazy open must reject the hostile length"
        );
        assert!(ModelArtifact::load_file(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
