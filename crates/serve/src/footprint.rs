//! Process resident-memory introspection.
//!
//! Capacity work needs a ground-truth answer to "how much memory is this
//! actually holding?" that survives allocator slack and lazy-page
//! accounting. On Linux the kernel's `VmRSS` line in
//! `/proc/self/status` is that answer; elsewhere there is no portable
//! std-only source, so the probes return `None` and callers degrade to
//! analytic estimates (the capacity bench always emits both).

/// Resident set size of the current process in bytes, or `None` when
/// the platform offers no `/proc/self/status` (non-Linux) or the field
/// is missing.
pub fn resident_bytes() -> Option<u64> {
    proc_status_kib("VmRSS:").map(|kib| kib * 1024)
}

/// Peak resident set size (`VmHWM`, the RSS high-water mark) in bytes,
/// when available. Note the high-water mark never goes down: measure
/// lean configurations *before* fat ones in the same process.
pub fn peak_resident_bytes() -> Option<u64> {
    proc_status_kib("VmHWM:").map(|kib| kib * 1024)
}

fn proc_status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    // Format: "VmRSS:      1234 kB"
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Formats a byte count for humans: `"1.50 GiB"`, `"320.0 MiB"`,
/// `"12.0 KiB"`, `"17 B"`.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [(&str, u64); 3] = [("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10)];
    for (unit, scale) in UNITS {
        if bytes >= scale {
            return format!("{:.2} {unit}", bytes as f64 / scale as f64);
        }
    }
    format!("{bytes} B")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_picks_units() {
        assert_eq!(fmt_bytes(17), "17 B");
        assert_eq!(fmt_bytes(12 << 10), "12.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_bytes((3 << 30) + (1 << 29)), "3.50 GiB");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn resident_probe_reads_proc() {
        let rss = resident_bytes().expect("linux has /proc/self/status");
        assert!(rss > 0);
        let peak = peak_resident_bytes().expect("VmHWM present");
        assert!(peak >= rss, "high-water {peak} below current {rss}");
    }
}
