//! Lazy, file-backed artifact state.
//!
//! The v2 container ([`crate::binfmt`]) is offset-indexed, so a serving
//! host never has to materialise the whole artifact: this module keeps
//! the file open and decodes state on first touch —
//!
//! * [`LazyTiers`] — per-tier item tables and predictors behind
//!   `OnceLock`s: a tier costs nothing until the first request for it,
//!   then stays resident (tables are shared, hot, and bounded at three).
//! * [`LazyUsers`] — per-user records behind a **sharded bounded LRU**:
//!   user `u` hashes to shard `u % shards`, each shard caches at most
//!   `shard_capacity` decoded records and evicts least-recently-used, so
//!   resident user state is capped at `shards × capacity` records no
//!   matter how many users the file holds.
//!
//! Every offset and length is validated against the file size at open
//! time (section table, tier directories) or at touch time (per-user
//! directory entries) **before any allocation**, so a hostile file fails
//! with [`ServeError::Artifact`], never an OOM.
//!
//! The decode functions are the same ones the eager reader uses, so a
//! record fetched lazily is bit-identical to its eager twin — the
//! determinism tests in `tests/lazy_serving.rs` pin this.
//!
//! Failure discipline: *structure* (headers, directories, shapes) is
//! validated at open and returns errors; a payload that fails to decode
//! at touch means the file was truncated or rewritten underneath a
//! running server, and panics with a message naming the file. Serving
//! from a file being modified in place is not supported.

use crate::artifact::TierParams;
use crate::artifact::{ModelArtifact, UserRecord, UserStore};
use crate::binfmt::{
    self, err, Meta, TableDirEntry, HEADER_LEN, SECTION_HEADER_LEN, SEC_FALLBACK, SEC_META,
    SEC_POPULARITY, SEC_TABLES, SEC_THETAS, SEC_USERS, TABLE_DIR_ENTRY, THETA_DIR_ENTRY,
    USER_DIR_ENTRY,
};
use crate::ServeError;
use hetefedrec_core::config::TierDims;
use hf_dataset::Tier;
use hf_fedsim::wire::Reader;
use hf_models::Ffn;
use hf_tensor::Matrix;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read as _, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Tuning for the lazy artifact backend.
#[derive(Clone, Copy, Debug)]
pub struct LazyConfig {
    /// Number of user-cache shards (user `u` lives in shard
    /// `u % user_shards`).
    pub user_shards: usize,
    /// Maximum decoded records held per shard; beyond it the
    /// least-recently-used record is evicted. Total resident user state
    /// is therefore at most `user_shards × shard_capacity` records.
    pub shard_capacity: usize,
}

impl Default for LazyConfig {
    fn default() -> Self {
        Self {
            user_shards: 64,
            shard_capacity: 256,
        }
    }
}

/// A shared handle on the artifact file. Reads seek under a mutex —
/// portable (no pread on stable std), and the hot serving path only
/// touches it on cache misses, which the determinism contract requires
/// to be off the fan-out anyway (user resolution is serial).
#[derive(Debug)]
pub(crate) struct ArtifactFile {
    path: PathBuf,
    len: u64,
    file: Mutex<File>,
}

impl ArtifactFile {
    fn open(path: &Path) -> Result<Self, ServeError> {
        let file =
            File::open(path).map_err(|e| err(format!("cannot open {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| err(format!("cannot stat {}: {e}", path.display())))?
            .len();
        Ok(Self {
            path: path.to_path_buf(),
            len,
            file: Mutex::new(file),
        })
    }

    /// Reads exactly `len` bytes at absolute offset `off`, validating
    /// the range against the file size *before* allocating the buffer.
    fn read(&self, off: u64, len: u64) -> Result<Vec<u8>, ServeError> {
        let end = off.checked_add(len).filter(|&e| e <= self.len);
        let n = usize::try_from(len).ok().filter(|_| end.is_some());
        let n = n.ok_or_else(|| {
            err(format!(
                "{}: read of {len} bytes at offset {off} exceeds file size {}",
                self.path.display(),
                self.len
            ))
        })?;
        let mut buf = vec![0u8; n];
        let mut f = self.file.lock().expect("artifact file lock");
        f.seek(SeekFrom::Start(off))
            .and_then(|_| f.read_exact(&mut buf))
            .map_err(|e| err(format!("{}: read failed: {e}", self.path.display())))?;
        Ok(buf)
    }

    /// `read` for touch-time paths, where structure was validated at
    /// open: a failure means the file changed underneath the server.
    fn read_or_die(&self, off: u64, len: u64, what: &str) -> Vec<u8> {
        self.read(off, len).unwrap_or_else(|e| {
            panic!("lazy artifact {what} no longer readable (file modified in place?): {e}")
        })
    }
}

// ---------------------------------------------------------------------
// Lazy tier tables / predictors
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct TierCache {
    tables: [OnceLock<Matrix>; 3],
    thetas: [OnceLock<Ffn>; 3],
}

/// Per-tier item tables and predictors, decoded on first touch.
#[derive(Clone, Debug)]
pub(crate) struct LazyTiers {
    file: Arc<ArtifactFile>,
    table_entries: [TableDirEntry; 3],
    /// Absolute file offset of the tables payload block.
    table_block: u64,
    theta_entries: [(u64, u64); 3],
    /// Absolute file offset of the thetas payload block.
    theta_block: u64,
    cache: Arc<TierCache>,
}

impl LazyTiers {
    pub(crate) fn table(&self, tier: Tier) -> &Matrix {
        let t = tier.index();
        self.cache.tables[t].get_or_init(|| {
            let e = &self.table_entries[t];
            let bytes = self
                .file
                .read_or_die(self.table_block + e.off, e.len, "tier table");
            let mut r = Reader::new(&bytes);
            binfmt::get_matrix(&mut r)
                .filter(|_| r.remaining() == 0)
                .unwrap_or_else(|| {
                    panic!(
                        "lazy artifact {}: {tier:?} table payload is malformed",
                        self.file.path.display()
                    )
                })
        })
    }

    pub(crate) fn theta(&self, tier: Tier) -> &Ffn {
        let t = tier.index();
        self.cache.thetas[t].get_or_init(|| {
            let (off, len) = self.theta_entries[t];
            let bytes = self
                .file
                .read_or_die(self.theta_block + off, len, "tier predictor");
            let mut r = Reader::new(&bytes);
            binfmt::get_ffn(&mut r)
                .filter(|_| r.remaining() == 0)
                .unwrap_or_else(|| {
                    panic!(
                        "lazy artifact {}: {tier:?} predictor payload is malformed",
                        self.file.path.display()
                    )
                })
        })
    }

    /// Table shape from the directory — no decode forced.
    pub(crate) fn table_dims(&self, tier: Tier) -> (usize, usize) {
        let e = &self.table_entries[tier.index()];
        (e.rows as usize, e.cols as usize)
    }
}

// ---------------------------------------------------------------------
// Lazy sharded user store
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct ShardCache {
    /// Monotonic use counter; the entry with the smallest stamp is the
    /// least recently used.
    tick: u64,
    map: HashMap<usize, (u64, Arc<UserRecord>)>,
}

#[derive(Debug)]
struct Shard {
    cap: usize,
    inner: Mutex<ShardCache>,
}

/// User records decoded on first touch, cached in a sharded bounded LRU.
#[derive(Clone, Debug)]
pub(crate) struct LazyUsers {
    file: Arc<ArtifactFile>,
    dims: TierDims,
    num_users: usize,
    /// Absolute file offset of the fixed-width user directory.
    dir_off: u64,
    /// Absolute file offset of the user payload block.
    payload_off: u64,
    payload_len: u64,
    shards: Arc<Vec<Shard>>,
}

impl LazyUsers {
    pub(crate) fn num_users(&self) -> usize {
        self.num_users
    }

    pub(crate) fn cached_records(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.lock().expect("shard lock").map.len())
            .sum()
    }

    pub(crate) fn user(&self, user: usize) -> Option<Arc<UserRecord>> {
        if user >= self.num_users {
            return None;
        }
        let shard = &self.shards[user % self.shards.len()];
        let mut cache = shard.inner.lock().expect("shard lock");
        cache.tick += 1;
        let stamp = cache.tick;
        if let Some((tick, record)) = cache.map.get_mut(&user) {
            *tick = stamp;
            return Some(record.clone());
        }
        let record = Arc::new(self.fetch(user));
        if cache.map.len() >= shard.cap {
            // Evict the least-recently-used record. Linear scan: shard
            // capacities are small (hundreds), misses are already an
            // I/O, and this keeps the structure a plain HashMap.
            if let Some(&lru) = cache
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(u, _)| u)
            {
                cache.map.remove(&lru);
            }
        }
        cache.map.insert(user, (stamp, record.clone()));
        Some(record)
    }

    /// Decodes one record from disk: directory entry, then payload.
    fn fetch(&self, user: usize) -> UserRecord {
        let entry = self.file.read_or_die(
            self.dir_off + user as u64 * USER_DIR_ENTRY,
            USER_DIR_ENTRY,
            "user directory",
        );
        let mut d = Reader::new(&entry);
        let off = d.get_u64_le().expect("12-byte entry");
        let len = d.get_u32_le().expect("12-byte entry") as u64;
        if off > self.payload_len || len > self.payload_len - off {
            panic!(
                "lazy artifact {}: user {user} directory entry is out of bounds",
                self.file.path.display()
            );
        }
        let bytes = self
            .file
            .read_or_die(self.payload_off + off, len, "user record");
        let mut r = Reader::new(&bytes);
        binfmt::get_user(&mut r, &self.dims)
            .filter(|_| r.remaining() == 0)
            .unwrap_or_else(|| {
                panic!(
                    "lazy artifact {}: user {user} payload is malformed",
                    self.file.path.display()
                )
            })
    }
}

// ---------------------------------------------------------------------
// Opening
// ---------------------------------------------------------------------

/// Opens a v2 artifact lazily; v1 files fall back to the eager reader.
/// See [`ModelArtifact::load_file_lazy`].
pub(crate) fn open_lazy(path: &Path, cfg: LazyConfig) -> Result<ModelArtifact, ServeError> {
    if cfg.user_shards == 0 {
        return Err(ServeError::config("user_shards", "must be at least 1"));
    }
    if cfg.shard_capacity == 0 {
        return Err(ServeError::config("shard_capacity", "must be at least 1"));
    }

    let file = Arc::new(ArtifactFile::open(path)?);

    let header = file.read(0, HEADER_LEN.min(file.len))?;
    let mut r = Reader::new(&header);
    let container = binfmt::parse_header(&mut r)?;
    if container == 1 {
        // v1 has no directories to seek by — eager is the only path.
        return ModelArtifact::load_file(path);
    }

    // Walk the section table without touching payloads: (tag, off, len).
    let mut sections: [Option<(u64, u64)>; 7] = [None; 7];
    let mut cursor = HEADER_LEN;
    while cursor < file.len {
        let head = file.read(cursor, SECTION_HEADER_LEN)?;
        let mut h = Reader::new(&head);
        let tag = h.get_u8().expect("9-byte header");
        let declared = h.get_u64_le().expect("9-byte header");
        let payload_off = cursor + SECTION_HEADER_LEN;
        // Satellite fix applies here too: validate the declared length
        // against the bytes remaining in the file before anything is
        // allocated or skipped.
        if declared > file.len - payload_off {
            return Err(err(format!(
                "section {tag} claims {declared} bytes but only {} remain",
                file.len - payload_off
            )));
        }
        let slot = sections
            .get_mut(tag as usize)
            .filter(|_| (SEC_META..=SEC_FALLBACK).contains(&tag))
            .ok_or_else(|| err(format!("unknown section tag {tag}")))?;
        if slot.replace((payload_off, declared)).is_some() {
            return Err(err(format!("duplicate section tag {tag}")));
        }
        cursor = payload_off + declared;
    }
    let section = |tag: u8, name: &str| {
        sections[tag as usize].ok_or_else(|| err(format!("missing `{name}` section")))
    };

    // meta / popularity / fallback are small and always needed: eager.
    let (off, len) = section(SEC_META, "meta")?;
    let meta: Meta = binfmt::parse_meta(&file.read(off, len)?)?;

    let (off, len) = section(SEC_POPULARITY, "popularity")?;
    let pop_bytes = file.read(off, len)?;
    let mut p = Reader::new(&pop_bytes);
    let popularity = p
        .get_u32_vec(meta.num_items)
        .filter(|_| p.remaining() == 0)
        .ok_or_else(|| err("`popularity` section is malformed"))?;

    let (off, len) = section(SEC_FALLBACK, "fallback")?;
    let fallback = binfmt::decode_fallback(&file.read(off, len)?, &meta.dims)?;

    // tables / thetas: validate directories now, defer payloads.
    let (off, len) = section(SEC_TABLES, "tables")?;
    let dir = file.read(off, (3 * TABLE_DIR_ENTRY).min(len))?;
    let table_entries = binfmt::parse_table_dir(&dir, len, &meta)?;
    let table_block = off + 3 * TABLE_DIR_ENTRY;

    let (off, len) = section(SEC_THETAS, "thetas")?;
    let dir = file.read(off, (3 * THETA_DIR_ENTRY).min(len))?;
    let theta_entries = binfmt::parse_theta_dir(&dir, len)?;
    let theta_block = off + 3 * THETA_DIR_ENTRY;

    // users: frame the directory, defer everything else to touch time.
    let (off, len) = section(SEC_USERS, "users")?;
    let (dir_len, payload_len) = binfmt::users_section_split(len, &meta)?;

    let shards = (0..cfg.user_shards)
        .map(|_| Shard {
            cap: cfg.shard_capacity,
            inner: Mutex::new(ShardCache::default()),
        })
        .collect::<Vec<_>>();

    Ok(ModelArtifact {
        model: meta.model,
        dims: meta.dims,
        standalone: meta.standalone,
        num_items: meta.num_items,
        params: TierParams::Lazy(LazyTiers {
            file: file.clone(),
            table_entries,
            table_block,
            theta_entries,
            theta_block,
            cache: Arc::new(TierCache::default()),
        }),
        users: UserStore::Lazy(LazyUsers {
            file,
            dims: meta.dims,
            num_users: meta.num_users,
            dir_off: off,
            payload_off: off + dir_len,
            payload_len,
            shards: Arc::new(shards),
        }),
        popularity,
        fallback,
    })
}
