//! # hf_serve
//!
//! The deployment side of the HeteFedRec reproduction: exportable model
//! artifacts and a batched top-K query layer.
//!
//! Training produces rankings only inside offline evaluation; this crate
//! is the inference surface that turns a trained [`Session`] into
//! something that answers queries:
//!
//! * [`ModelArtifact`] — an immutable, versioned snapshot of the frozen
//!   item tables, per-tier predictors, and per-user serving state, with a
//!   cold-start fallback for unknown users. Exported from a live session
//!   ([`ExportArtifact::export_artifact`]) or rebuilt from a persisted
//!   checkpoint ([`ModelArtifact::from_checkpoint_file`]).
//! * [`RecommenderBuilder`] → [`Recommender`] — validated serving
//!   configuration ([`ServeError`] per field) and the batch-oriented
//!   query engine: requests group per model tier, score as blocked
//!   `matmul_rows` products over item-table panels fanned out via
//!   `hf_fedsim::parallel_map`, and funnel into
//!   `hf_metrics::top_k_excluding`.
//!
//! For million-user / million-item capacity the artifact layer is
//! **lazily loadable**: the v2 binary container ([`binfmt`]) is
//! offset-indexed, [`ModelArtifact::load_file_lazy`] decodes tier tables
//! and user records on first touch (bounded sharded LRU, [`lazy`]),
//! [`ItemHalfMode::Tiled`] caps the precomputed item-half memory, and
//! [`synth`] builds million-scale artifacts directly from an
//! `hf_dataset::SyntheticProfile` without training. [`footprint`]
//! reports what all of it actually costs in resident bytes.
//!
//! Offline evaluation (`hetefedrec_core::eval`) and this serving layer
//! share one scorer (`hf_models::scoring::SplitNcf`), so they produce
//! identical rankings — and responses are bit-identical across thread
//! counts, batch compositions, and eager/lazy/tiled storage modes.
//!
//! ```
//! use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
//! use hf_dataset::{SplitDataset, SyntheticConfig};
//! use hf_models::ModelKind;
//! use hf_serve::{ExportArtifact, RecommendRequest, RecommenderBuilder};
//!
//! let data = SyntheticConfig::tiny().generate(7);
//! let split = SplitDataset::paper_split(&data, 7);
//! let cfg = TrainConfig::test_default(ModelKind::Ncf);
//! let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
//!     .eval_every(0)
//!     .build()
//!     .expect("valid configuration");
//! session.run_epoch();
//!
//! let recommender = RecommenderBuilder::new(session.export_artifact())
//!     .default_k(5)
//!     .build()
//!     .expect("valid serving configuration");
//! let response = recommender.recommend(&RecommendRequest::new(0));
//! assert_eq!(response.items.len(), 5);
//! assert!(!response.cold_start);
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod binfmt;
pub mod footprint;
pub mod lazy;
pub mod recommender;
pub mod slot;
pub mod synth;

pub use artifact::{ModelArtifact, SoloModel, UserRecord, UserRef, ARTIFACT_VERSION};
pub use binfmt::BINFMT_VERSION;
pub use lazy::LazyConfig;
pub use recommender::{
    ItemFilter, ItemHalfMode, RecommendRequest, RecommendResponse, Recommender, RecommenderBuilder,
    ScoredItem,
};
pub use slot::ArtifactSlot;
pub use synth::SynthStats;

use hetefedrec_core::session::Session;

/// Why a serving configuration or artifact was rejected.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// A serving-configuration field failed validation (the
    /// [`RecommenderBuilder`] mirror of training's `ConfigError`).
    Config {
        /// The offending field, e.g. `"default_k"`.
        field: &'static str,
        /// Why the value was rejected.
        message: String,
    },
    /// The artifact (or the checkpoint it was rebuilt from) is unusable.
    Artifact(String),
}

impl ServeError {
    pub(crate) fn config(field: &'static str, message: impl Into<String>) -> Self {
        ServeError::Config {
            field,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config { field, message } => {
                write!(f, "serving config field `{field}`: {message}")
            }
            ServeError::Artifact(msg) => write!(f, "bad artifact: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Session-side sugar for artifact export: `session.export_artifact()`.
pub trait ExportArtifact {
    /// Snapshots the current model state into an immutable
    /// [`ModelArtifact`].
    fn export_artifact(&self) -> ModelArtifact;
}

impl ExportArtifact for Session {
    fn export_artifact(&self) -> ModelArtifact {
        ModelArtifact::from_session(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
    use hf_dataset::{SplitDataset, SyntheticConfig, Tier};
    use hf_models::ModelKind;

    fn tiny_split(seed: u64) -> SplitDataset {
        let data = SyntheticConfig::tiny().generate(seed);
        SplitDataset::paper_split(&data, seed)
    }

    fn trained_session(strategy: Strategy, model: ModelKind, epochs: usize) -> Session {
        let mut cfg = TrainConfig::test_default(model);
        cfg.epochs = epochs.max(1);
        let mut s = SessionBuilder::new(cfg, strategy, tiny_split(9))
            .eval_every(0)
            .build()
            .expect("valid config");
        for _ in 0..epochs {
            s.run_epoch();
        }
        s
    }

    fn recommender(session: &Session, threads: usize) -> Recommender {
        RecommenderBuilder::new(session.export_artifact())
            .default_k(8)
            .threads(threads)
            .panel_items(7) // deliberately awkward panel size
            .build()
            .expect("valid serving config")
    }

    #[test]
    fn builder_rejects_invalid_fields_by_name() {
        let s = trained_session(Strategy::AllSmall, ModelKind::Ncf, 0);
        let artifact = s.export_artifact();
        let err = RecommenderBuilder::new(artifact.clone())
            .default_k(0)
            .build()
            .expect_err("k = 0");
        assert!(
            matches!(
                err,
                ServeError::Config {
                    field: "default_k",
                    ..
                }
            ),
            "{err}"
        );
        let err = RecommenderBuilder::new(artifact.clone())
            .threads(0)
            .build()
            .expect_err("threads = 0");
        assert!(
            matches!(
                err,
                ServeError::Config {
                    field: "threads",
                    ..
                }
            ),
            "{err}"
        );
        let err = RecommenderBuilder::new(artifact)
            .panel_items(0)
            .build()
            .expect_err("panel_items = 0");
        assert!(
            matches!(
                err,
                ServeError::Config {
                    field: "panel_items",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn artifact_snapshots_session_shape() {
        let s = trained_session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf, 1);
        let a = s.export_artifact();
        assert_eq!(a.version(), ARTIFACT_VERSION);
        assert_eq!(a.num_users(), s.split().num_users());
        assert_eq!(a.num_items(), s.split().num_items());
        assert!(!a.is_standalone());
        for tier in Tier::ALL {
            assert_eq!(a.table(tier).cols(), s.cfg().dims.dim(tier));
            assert!(!a.fallback(tier).is_empty());
        }
        // Popularity counts sum to the total number of train interactions.
        let total: u64 = (0..a.num_items() as u32)
            .map(|i| a.popularity(i) as u64)
            .sum();
        let want: u64 = (0..s.split().num_users())
            .map(|u| s.split().user(u).train.len() as u64)
            .sum();
        assert_eq!(total, want);
    }

    #[test]
    fn responses_exclude_history_and_respect_k() {
        let s = trained_session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf, 2);
        let r = recommender(&s, 1);
        for user in 0..s.split().num_users().min(8) {
            let resp = r.recommend(&RecommendRequest::new(user));
            assert_eq!(resp.items.len().min(8), resp.items.len());
            assert!(!resp.cold_start);
            let history = &s.split().user(user).train;
            for it in &resp.items {
                assert!(
                    history.binary_search(&it.item).is_err(),
                    "user {user}: seen item {} recommended",
                    it.item
                );
                assert!(it.score.is_finite());
            }
            // Scores are ranked, best first, ties toward smaller id.
            for w in resp.items.windows(2) {
                assert!(
                    w[0].score > w[1].score || (w[0].score == w[1].score && w[0].item < w[1].item)
                );
            }
        }
    }

    #[test]
    fn unknown_users_take_the_cold_start_path() {
        let s = trained_session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf, 1);
        let r = RecommenderBuilder::new(s.export_artifact())
            .default_k(5)
            .cold_start_tier(Tier::Medium)
            .build()
            .unwrap();
        let resp = r.recommend(&RecommendRequest::new(usize::MAX));
        assert!(resp.cold_start);
        assert_eq!(resp.tier, Tier::Medium);
        assert_eq!(resp.items.len(), 5);
        // Deterministic: asking again gives the identical answer.
        assert_eq!(r.recommend(&RecommendRequest::new(usize::MAX)), resp);
    }

    #[test]
    fn cold_start_works_for_lightgcn_too() {
        let s = trained_session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::LightGcn, 1);
        let r = recommender(&s, 1);
        let resp = r.recommend(&RecommendRequest::new(9_999_999));
        assert!(resp.cold_start);
        assert!(!resp.items.is_empty());
    }

    #[test]
    fn filters_drop_candidates() {
        let s = trained_session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf, 1);
        let r = recommender(&s, 1);
        // Predicate: only even item ids.
        let resp = r.recommend(&RecommendRequest::new(0).with_filter(|item| item % 2 == 0));
        assert!(!resp.items.is_empty());
        assert!(resp.items.iter().all(|it| it.item % 2 == 0));
        // Popularity floor: recommended items must clear it.
        let resp = r.recommend(&RecommendRequest::new(0).with_min_popularity(2));
        for it in &resp.items {
            assert!(r.artifact().popularity(it.item) >= 2);
        }
        // Explicit exclusions are honoured on top of history.
        let banned: Vec<u32> = resp.items.iter().map(|it| it.item).collect();
        let resp2 = r.recommend(&RecommendRequest::new(0).exclude(banned.clone()));
        for it in &resp2.items {
            assert!(!banned.contains(&it.item));
        }
    }

    #[test]
    fn batch_matches_singles_and_is_thread_invariant() {
        let s = trained_session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf, 2);
        let requests: Vec<RecommendRequest> = (0..s.split().num_users())
            .map(RecommendRequest::new)
            .chain([RecommendRequest::new(123_456)]) // cold start in the mix
            .collect();
        let r1 = recommender(&s, 1);
        let batch1 = r1.recommend_batch(&requests);
        // Batch equals one-at-a-time.
        for (req, resp) in requests.iter().zip(&batch1) {
            assert_eq!(&r1.recommend(req), resp);
        }
        // And is bit-identical across thread counts.
        for threads in [2, 8] {
            let rt = recommender(&s, threads);
            let batch = rt.recommend_batch(&requests);
            assert_eq!(batch.len(), batch1.len());
            for (a, b) in batch1.iter().zip(&batch) {
                assert_eq!(a.user, b.user);
                assert_eq!(a.items.len(), b.items.len());
                for (x, y) in a.items.iter().zip(&b.items) {
                    assert_eq!(x.item, y.item, "{threads} threads");
                    assert_eq!(x.score.to_bits(), y.score.to_bits(), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn cold_start_blend_off_is_bit_identical_and_validated() {
        let s = trained_session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf, 1);
        let plain = RecommenderBuilder::new(s.export_artifact())
            .default_k(7)
            .build()
            .unwrap();
        let zero = RecommenderBuilder::new(s.export_artifact())
            .default_k(7)
            .cold_start_blend(0.0)
            .build()
            .unwrap();
        let cold = RecommendRequest::new(usize::MAX);
        assert_eq!(plain.recommend(&cold), zero.recommend(&cold));

        // Out-of-range weights are rejected by field name.
        for bad in [-0.1, 1.5, f32::NAN] {
            let err = RecommenderBuilder::new(s.export_artifact())
                .cold_start_blend(bad)
                .build()
                .expect_err("invalid blend");
            assert!(
                matches!(
                    err,
                    ServeError::Config {
                        field: "cold_start_blend",
                        ..
                    }
                ),
                "{err}"
            );
        }
    }

    #[test]
    fn cold_start_blend_reshapes_cold_users_only() {
        for model in [ModelKind::Ncf, ModelKind::LightGcn] {
            let s = trained_session(Strategy::HeteFedRec(Ablation::FULL), model, 2);
            let plain = RecommenderBuilder::new(s.export_artifact())
                .default_k(10)
                .build()
                .unwrap();
            let blended = RecommenderBuilder::new(s.export_artifact())
                .default_k(10)
                .cold_start_blend(1.0) // pure popularity prior
                .build()
                .unwrap();
            // Known users never blend: bit-identical responses.
            for user in 0..s.split().num_users() {
                let a = plain.recommend(&RecommendRequest::new(user));
                let b = blended.recommend(&RecommendRequest::new(user));
                for (x, y) in a.items.iter().zip(&b.items) {
                    assert_eq!(x.item, y.item, "{model:?} user {user}");
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
            // Cold users see different *scores* under the prior (the
            // pseudo-user is not the tier mean), deterministically.
            let cold = RecommendRequest::new(usize::MAX);
            let a = blended.recommend(&cold);
            assert!(a.cold_start && !a.items.is_empty());
            assert_eq!(a, blended.recommend(&cold));
            let b = plain.recommend(&cold);
            let same_scores = a
                .items
                .iter()
                .zip(&b.items)
                .all(|(x, y)| x.score.to_bits() == y.score.to_bits());
            assert!(!same_scores, "{model:?}: γ=1 must change cold scores");
        }
    }

    #[test]
    fn standalone_artifacts_serve_private_models() {
        let s = trained_session(Strategy::Standalone, ModelKind::Ncf, 1);
        let a = s.export_artifact();
        assert!(a.is_standalone());
        let r = RecommenderBuilder::new(a).default_k(6).build().unwrap();
        let requests: Vec<RecommendRequest> = (0..s.split().num_users().min(6))
            .map(RecommendRequest::new)
            .collect();
        let batch = r.recommend_batch(&requests);
        assert!(batch.iter().all(|resp| resp.items.len() == 6));
        // Thread invariance holds for the solo path too.
        let r8 = RecommenderBuilder::new(s.export_artifact())
            .default_k(6)
            .threads(8)
            .panel_items(5)
            .build()
            .unwrap();
        let batch8 = r8.recommend_batch(&requests);
        for (a, b) in batch.iter().zip(&batch8) {
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.item, y.item);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn serving_scores_match_eval_scores_bitwise() {
        // The acceptance contract: `hetefedrec_core::eval` and the
        // recommender share one scorer, so per-item scores agree to the
        // bit — scalar path vs blocked panel path.
        for model in [ModelKind::Ncf, ModelKind::LightGcn] {
            let s = trained_session(Strategy::HeteFedRec(Ablation::FULL), model, 2);
            let r = recommender(&s, 4);
            for user in 0..s.split().num_users() {
                let tier = s.model_groups().tier(user);
                let want = hetefedrec_core::eval::score_user(
                    s.cfg(),
                    s.strategy(),
                    s.split(),
                    s.server(),
                    s.user_state(user),
                    user,
                    tier,
                );
                let got = r.score_request(&RecommendRequest::new(user).keep_seen());
                assert_eq!(want.len(), got.len());
                for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                    assert_eq!(
                        w.to_bits(),
                        g.to_bits(),
                        "{model:?} user {user} item {i}: eval {w} vs serve {g}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_checkpoint_reproduces_the_exported_artifact() {
        let s = trained_session(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf, 1);
        let direct = RecommenderBuilder::new(s.export_artifact())
            .default_k(10)
            .build()
            .unwrap();
        let checkpoint = s.checkpoint();
        let reloaded = ModelArtifact::from_checkpoint(&checkpoint, tiny_split(9)).unwrap();
        let from_ckpt = RecommenderBuilder::new(reloaded)
            .default_k(10)
            .build()
            .unwrap();
        for user in 0..s.split().num_users() {
            let a = direct.recommend(&RecommendRequest::new(user));
            let b = from_ckpt.recommend(&RecommendRequest::new(user));
            assert_eq!(a.items.len(), b.items.len());
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.item, y.item);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
        // Garbage documents are rejected, not panicked on.
        assert!(ModelArtifact::from_checkpoint("not json", tiny_split(9)).is_err());
        assert!(ModelArtifact::from_checkpoint_file("/nonexistent/path", tiny_split(9)).is_err());
    }
}
