//! The batched top-K query layer.
//!
//! [`RecommenderBuilder`] validates a serving configuration against a
//! [`ModelArtifact`] and produces a [`Recommender`], which answers typed
//! [`RecommendRequest`]s with deterministic [`RecommendResponse`]s.
//!
//! The hot path is **batch-oriented**: [`Recommender::recommend_batch`]
//! groups requests by model tier and fans `(tier, item panel)` scoring
//! units out over [`hf_fedsim::parallel_map`]. The first-layer *item
//! half* of each tier depends only on the frozen artifact, so by default
//! the builder precomputes it once for the whole catalogue
//! ([`SplitNcf::item_half_block`] over every row) and serving slices the
//! stored panel; [`RecommenderBuilder::precompute_item_halves`]`(false)`
//! keeps the memory-lean per-batch blocked
//! [`Matrix::matmul_rows`](hf_tensor::Matrix::matmul_rows) product
//! instead — the two are bit-identical per row by the [`SplitNcf`]
//! contract. Ranking happens *inside* each unit: a panel's scores are
//! reduced to its top-K candidates ([`hf_metrics::top_k_scored`] — ties
//! break toward the smaller item id; NaN scores are skipped, which is how
//! item filters and the popularity floor drop candidates) and merged
//! under the same order, so no dense `num_items`-wide vector is ever
//! materialised per request and serving memory is `O(batch × k)` plus
//! one panel per in-flight unit.
//!
//! Determinism contract: every `(request, item)` score is computed
//! exactly once, from inputs that do not depend on batch composition,
//! panel size, or thread count — so responses are **bit-identical**
//! across 1/2/8 threads, across batch shapes, and against the offline
//! evaluator's scores ([`hetefedrec_core::eval::score_user`]), which uses
//! the same [`SplitNcf`] scorer in scalar form.

use crate::artifact::ModelArtifact;
use crate::ServeError;
use hf_dataset::Tier;
use hf_fedsim::parallel::parallel_map;
use hf_metrics::top_k_scored;
use hf_models::scoring::{propagate_lightgcn, SplitNcf};
use hf_models::ModelKind;
use hf_tensor::Matrix;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Item predicate for [`RecommendRequest::filter`]: return `false` to
/// drop an item from the candidate set.
pub type ItemFilter = Arc<dyn Fn(u32) -> bool + Send + Sync>;

/// A typed top-K query.
#[derive(Clone)]
pub struct RecommendRequest {
    /// User id. Ids at or beyond the artifact's user count take the
    /// cold-start fallback path.
    pub user: usize,
    /// Ranking cutoff; `0` means the recommender's `default_k`.
    pub k: usize,
    /// Extra item ids to exclude (need not be sorted).
    pub exclude: Vec<u32>,
    /// Exclude the user's own training history (default `true` — serving
    /// someone their already-consumed items is rarely useful, and it is
    /// the offline evaluation protocol's masking rule).
    pub exclude_seen: bool,
    /// Drop items with fewer than this many training interactions
    /// (`0` disables the floor).
    pub min_popularity: u32,
    /// Optional candidate predicate (catalogue filters, availability…).
    pub filter: Option<ItemFilter>,
}

impl RecommendRequest {
    /// A default query for one user: recommender-default `k`, history
    /// excluded, no filters.
    pub fn new(user: usize) -> Self {
        Self {
            user,
            k: 0,
            exclude: Vec::new(),
            exclude_seen: true,
            min_popularity: 0,
            filter: None,
        }
    }

    /// Sets the ranking cutoff.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Adds explicit exclusions.
    pub fn exclude(mut self, items: impl IntoIterator<Item = u32>) -> Self {
        self.exclude.extend(items);
        self
    }

    /// Keeps already-seen items in the candidate set.
    pub fn keep_seen(mut self) -> Self {
        self.exclude_seen = false;
        self
    }

    /// Sets the popularity floor.
    pub fn with_min_popularity(mut self, floor: u32) -> Self {
        self.min_popularity = floor;
        self
    }

    /// Sets the candidate predicate.
    pub fn with_filter(mut self, filter: impl Fn(u32) -> bool + Send + Sync + 'static) -> Self {
        self.filter = Some(Arc::new(filter));
        self
    }
}

impl std::fmt::Debug for RecommendRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecommendRequest")
            .field("user", &self.user)
            .field("k", &self.k)
            .field("exclude", &self.exclude)
            .field("exclude_seen", &self.exclude_seen)
            .field("min_popularity", &self.min_popularity)
            .field("filter", &self.filter.as_ref().map(|_| "<predicate>"))
            .finish()
    }
}

/// One ranked item.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredItem {
    /// Item id.
    pub item: u32,
    /// Model logit the ranking used (higher is better).
    pub score: f32,
}

/// A deterministic answer to a [`RecommendRequest`].
#[derive(Clone, Debug, PartialEq)]
pub struct RecommendResponse {
    /// The queried user id.
    pub user: usize,
    /// Tier whose model produced the ranking.
    pub tier: Tier,
    /// `true` when the user was unknown and the cold-start fallback
    /// embedding was used.
    pub cold_start: bool,
    /// Ranked recommendations, best first.
    pub items: Vec<ScoredItem>,
}

/// How a [`Recommender`] holds the per-tier first-layer item halves.
///
/// The halves are a pure function of the frozen artifact, and all three
/// modes produce **bit-identical** scores (the [`SplitNcf`] contract
/// guarantees the blocked and whole-table products agree per row) — the
/// choice is purely a memory/latency trade:
///
/// | mode | resident memory | per-batch work |
/// |---|---|---|
/// | [`Precomputed`](ItemHalfMode::Precomputed) | `3 × items × hidden` floats | none |
/// | [`PerBatch`](ItemHalfMode::PerBatch) | one panel per in-flight unit | every panel recomputed |
/// | [`Tiled`](ItemHalfMode::Tiled) | ≤ `max_panels × panel_items × hidden` floats | cache misses only |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemHalfMode {
    /// Compute the whole catalogue's halves at build time (the default;
    /// fastest steady state, `O(items)` resident).
    Precomputed,
    /// Recompute each panel inside its scoring unit, holding nothing
    /// between batches (the memory-lean mode).
    PerBatch,
    /// Cache computed panels in a bounded LRU of at most `max_panels`
    /// tiles (each `panel_items` rows wide), shared across tiers — the
    /// capacity-serving middle ground: steady-state hot panels serve
    /// from cache while peak memory stays configurable.
    Tiled {
        /// Maximum resident tiles across all tiers (must be ≥ 1).
        max_panels: usize,
    },
}

/// Validated constructor for a [`Recommender`].
pub struct RecommenderBuilder {
    artifact: ModelArtifact,
    default_k: usize,
    threads: usize,
    panel_items: usize,
    cold_start_tier: Tier,
    cold_start_blend: f32,
    item_half_mode: ItemHalfMode,
}

impl RecommenderBuilder {
    /// Starts a builder over an artifact with serving defaults: `k = 10`,
    /// single-threaded, 512-item panels, small-tier cold start (no
    /// popularity blend), item halves precomputed.
    pub fn new(artifact: ModelArtifact) -> Self {
        Self {
            artifact,
            default_k: 10,
            threads: 1,
            panel_items: 512,
            cold_start_tier: Tier::Small,
            cold_start_blend: 0.0,
            item_half_mode: ItemHalfMode::Precomputed,
        }
    }

    /// Ranking cutoff used when a request leaves `k` at 0.
    pub fn default_k(mut self, k: usize) -> Self {
        self.default_k = k;
        self
    }

    /// Worker threads for the batch fan-out. Responses are bit-identical
    /// for every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Items per scoring panel (the `matmul_rows` block unit).
    pub fn panel_items(mut self, items: usize) -> Self {
        self.panel_items = items;
        self
    }

    /// Tier whose model and fallback embedding serve unknown users.
    pub fn cold_start_tier(mut self, tier: Tier) -> Self {
        self.cold_start_tier = tier;
        self
    }

    /// Blend weight `γ ∈ [0, 1]` mixing the popularity prior into the
    /// cold-start representation (default `0`, off).
    ///
    /// The artifact already carries both halves of the mix: the per-tier
    /// mean user embedding (the fallback) and per-item training
    /// interaction counts. At `build()` the counts become a per-tier
    /// *popularity prior* — the popularity-weighted mean item-embedding
    /// row, i.e. the pseudo-user whose taste is the catalogue's traffic —
    /// and unknown users are served from
    /// `(1 - γ) · fallback + γ · prior` instead of the bare fallback.
    /// At `γ = 0` the blend arithmetic is skipped entirely, so responses
    /// are **bit-identical** to a recommender built without the knob.
    /// Known users never blend.
    pub fn cold_start_blend(mut self, gamma: f32) -> Self {
        self.cold_start_blend = gamma;
        self
    }

    /// Whether [`build`](Self::build) precomputes each tier's first-layer
    /// item halves for the whole catalogue (default `true`). Sugar for
    /// [`item_half_mode`](Self::item_half_mode) with
    /// [`ItemHalfMode::Precomputed`] / [`ItemHalfMode::PerBatch`];
    /// responses are bit-identical either way.
    pub fn precompute_item_halves(mut self, precompute: bool) -> Self {
        self.item_half_mode = if precompute {
            ItemHalfMode::Precomputed
        } else {
            ItemHalfMode::PerBatch
        };
        self
    }

    /// How the per-tier item halves are held — see [`ItemHalfMode`]. All
    /// modes produce bit-identical rankings; [`ItemHalfMode::Tiled`]
    /// bounds peak memory to `max_panels × panel_items` rows, which is
    /// the capacity-serving configuration for million-item catalogues.
    pub fn item_half_mode(mut self, mode: ItemHalfMode) -> Self {
        self.item_half_mode = mode;
        self
    }

    /// Validates the configuration and builds the recommender.
    pub fn build(self) -> Result<Recommender, ServeError> {
        if self.default_k == 0 {
            return Err(ServeError::config(
                "default_k",
                "ranking cutoff must be positive",
            ));
        }
        if self.threads == 0 {
            return Err(ServeError::config(
                "threads",
                "at least one worker thread required",
            ));
        }
        if self.panel_items == 0 {
            return Err(ServeError::config(
                "panel_items",
                "scoring panels must hold at least one item",
            ));
        }
        if !(0.0..=1.0).contains(&self.cold_start_blend) {
            return Err(ServeError::config(
                "cold_start_blend",
                format!(
                    "blend weight must be in [0, 1], got {}",
                    self.cold_start_blend
                ),
            ));
        }
        if let ItemHalfMode::Tiled { max_panels } = self.item_half_mode {
            if max_panels == 0 {
                return Err(ServeError::config(
                    "item_half_mode",
                    "tiled mode needs at least one resident panel",
                ));
            }
        }
        let artifact = self.artifact;
        let dims = artifact.dims();
        for tier in Tier::ALL {
            // Shape check via the directory, so validating a lazy
            // artifact does not force its tier tables off disk.
            let (rows, cols) = artifact.table_dims(tier);
            if cols != dims.dim(tier) || rows != artifact.num_items() {
                return Err(ServeError::Artifact(format!(
                    "{tier:?} table is {rows}x{cols}, expected {}x{}",
                    artifact.num_items(),
                    dims.dim(tier)
                )));
            }
        }
        let scorers: [SplitNcf; 3] = std::array::from_fn(|t| {
            SplitNcf::from_ffn(dims.dim(Tier::ALL[t]), artifact.theta(Tier::ALL[t]))
        });
        // The item halves are a pure function of the frozen artifact, so
        // precomputed mode builds them once here instead of per batch.
        let item_halves = match self.item_half_mode {
            ItemHalfMode::Precomputed => ItemHalves::Full(Box::new(std::array::from_fn(|t| {
                scorers[t].item_half_block(artifact.table(Tier::ALL[t]), 0, artifact.num_items())
            }))),
            ItemHalfMode::PerBatch => ItemHalves::PerBatch,
            ItemHalfMode::Tiled { max_panels } => ItemHalves::Tiled(PanelCache::new(max_panels)),
        };
        // Popularity prior per tier: the popularity-weighted mean item
        // row, accumulated in ascending item order so the result is
        // deterministic. Only materialised when the blend is on.
        let pop_prior = (self.cold_start_blend > 0.0).then(|| {
            std::array::from_fn(|t| {
                let tier = Tier::ALL[t];
                let table = artifact.table(tier);
                let mut prior = vec![0.0f32; dims.dim(tier)];
                let mut total = 0.0f32;
                for item in 0..artifact.num_items() {
                    let w = artifact.popularity(item as u32) as f32;
                    if w > 0.0 {
                        hf_tensor::ops::axpy_slice(&mut prior, w, table.row(item));
                        total += w;
                    }
                }
                if total > 0.0 {
                    let inv = 1.0 / total;
                    prior.iter_mut().for_each(|x| *x *= inv);
                }
                prior
            })
        });
        Ok(Recommender {
            artifact,
            scorers,
            item_halves,
            pop_prior,
            default_k: self.default_k,
            threads: self.threads,
            panel_items: self.panel_items,
            cold_start_tier: self.cold_start_tier,
            cold_start_blend: self.cold_start_blend,
        })
    }
}

/// Item-half storage, keyed by [`ItemHalfMode`].
#[derive(Debug)]
enum ItemHalves {
    /// Whole-catalogue halves per tier, built once.
    Full(Box<[Matrix; 3]>),
    /// Nothing held; each unit computes its panel's blocked product.
    PerBatch,
    /// Bounded LRU of computed `(tier, panel)` tiles.
    Tiled(PanelCache),
}

/// A bounded LRU of item-half tiles, shared across tiers and scoring
/// threads. Tiles align with the planned panels (`panel_items` rows), so
/// a cache hit hands a unit exactly the rows it scores. A miss computes
/// the tile *outside* the lock — two threads may race to compute the
/// same tile, but the products are bit-identical, so whichever insert
/// lands is indistinguishable and determinism is unaffected.
#[derive(Debug)]
struct PanelCache {
    max_panels: usize,
    inner: Mutex<PanelCacheInner>,
}

#[derive(Debug, Default)]
struct PanelCacheInner {
    tick: u64,
    map: HashMap<(u8, u32), (u64, Arc<Matrix>)>,
}

impl PanelCache {
    fn new(max_panels: usize) -> Self {
        Self {
            max_panels,
            inner: Mutex::new(PanelCacheInner::default()),
        }
    }

    fn get(&self, tier: usize, start: usize, compute: impl FnOnce() -> Matrix) -> Arc<Matrix> {
        let key = (tier as u8, start as u32);
        {
            let mut cache = self.inner.lock().expect("panel cache lock");
            cache.tick += 1;
            let stamp = cache.tick;
            if let Some((tick, tile)) = cache.map.get_mut(&key) {
                *tick = stamp;
                return tile.clone();
            }
        }
        let tile = Arc::new(compute());
        let mut cache = self.inner.lock().expect("panel cache lock");
        cache.tick += 1;
        let stamp = cache.tick;
        if let Some((tick, tile)) = cache.map.get_mut(&key) {
            *tick = stamp;
            return tile.clone();
        }
        if cache.map.len() >= self.max_panels {
            // Evict the least-recently-used tile (linear scan: the cap
            // is small, and a miss already paid for a panel product).
            if let Some(&lru) = cache
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k)
            {
                cache.map.remove(&lru);
            }
        }
        cache.map.insert(key, (stamp, tile.clone()));
        tile
    }

    fn resident(&self) -> usize {
        self.inner.lock().expect("panel cache lock").map.len()
    }
}

/// A batched top-K query engine over a frozen [`ModelArtifact`].
#[derive(Debug)]
pub struct Recommender {
    artifact: ModelArtifact,
    /// Per-tier split scorers built from the frozen predictors.
    scorers: [SplitNcf; 3],
    /// First-layer item halves, held per [`ItemHalfMode`].
    item_halves: ItemHalves,
    /// Per-tier popularity-weighted mean item row; `Some` only when the
    /// cold-start blend is on.
    pop_prior: Option<[Vec<f32>; 3]>,
    default_k: usize,
    threads: usize,
    panel_items: usize,
    cold_start_tier: Tier,
    cold_start_blend: f32,
}

/// A resolved request: serving tier, first-layer user half, exclusions,
/// and (standalone only) the user's private scorer.
struct Resolved {
    tier: Tier,
    cold_start: bool,
    user_half: Vec<f32>,
    exclude: Vec<u32>,
    /// Present for standalone users: private scorer + overlay owner id.
    solo: Option<(SplitNcf, usize)>,
}

/// One unit of batch work: score the items `start..end` for either every
/// request of a tier (shared parameters) or one standalone request.
enum Unit {
    Shared {
        tier: usize,
        start: usize,
        end: usize,
    },
    Solo {
        query: usize,
        start: usize,
        end: usize,
    },
}

impl Recommender {
    /// The artifact this recommender serves.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// Ranking cutoff used for requests that leave `k` at 0.
    pub fn default_k(&self) -> usize {
        self.default_k
    }

    /// How many item-half tiles are resident right now: the LRU
    /// occupancy in [`ItemHalfMode::Tiled`], every panel of every tier
    /// in [`ItemHalfMode::Precomputed`], zero in
    /// [`ItemHalfMode::PerBatch`]. Capacity reporting for benches.
    pub fn cached_item_half_panels(&self) -> usize {
        match &self.item_halves {
            ItemHalves::Full(_) => 3 * self.artifact.num_items().div_ceil(self.panel_items),
            ItemHalves::PerBatch => 0,
            ItemHalves::Tiled(cache) => cache.resident(),
        }
    }

    /// Answers one request ([`Recommender::recommend_batch`] of one).
    pub fn recommend(&self, request: &RecommendRequest) -> RecommendResponse {
        self.recommend_batch(std::slice::from_ref(request))
            .pop()
            .expect("one response per request")
    }

    /// Answers a batch of requests.
    ///
    /// Requests are grouped per model tier; each `(tier, panel)` unit
    /// reads the tier's precomputed item halves (or computes the blocked
    /// product in memory-lean mode), shares the panel across the tier's
    /// requests, ranks it down to per-request top-K candidates, and the
    /// units fan out over [`hf_fedsim::parallel_map`]. Candidate lists
    /// merge under the same `(score desc, item asc)` order the panel
    /// ranking uses, which reproduces the dense whole-catalogue ranking
    /// exactly while never holding more than `k` survivors per request.
    /// Responses are returned in request order and are bit-identical for
    /// every thread count, panel size, precompute setting, and batch
    /// composition.
    pub fn recommend_batch(&self, requests: &[RecommendRequest]) -> Vec<RecommendResponse> {
        let resolved: Vec<Resolved> = requests.iter().map(|r| self.resolve(r)).collect();
        let ks: Vec<usize> = requests
            .iter()
            .map(|r| if r.k == 0 { self.default_k } else { r.k })
            .collect();
        let (tier_queries, units) = self.plan(&resolved);

        // Rank inside the unit: the panel's score vector dies with the
        // closure and only its top-K candidates escape.
        let partials = parallel_map(&units, self.threads, |unit| {
            self.unit_parts(unit, &resolved, &tier_queries)
                .into_iter()
                .map(|(q, start, mut part)| {
                    self.mask_panel(&requests[q], start, &mut part);
                    (
                        q,
                        top_k_scored(&part, ks[q], start as u32, &resolved[q].exclude),
                    )
                })
                .collect::<Vec<_>>()
        });

        // Merge panel winners per request, truncating to `k` after every
        // panel so the gathered state stays `O(batch × k)`.
        let mut candidates: Vec<Vec<(u32, f32)>> = requests.iter().map(|_| Vec::new()).collect();
        for unit in partials {
            for (q, panel_top) in unit {
                let cand = &mut candidates[q];
                cand.extend(panel_top);
                cand.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                cand.truncate(ks[q]);
            }
        }

        requests
            .iter()
            .zip(resolved)
            .zip(candidates)
            .map(|((request, res), cand)| RecommendResponse {
                user: request.user,
                tier: res.tier,
                cold_start: res.cold_start,
                items: cand
                    .into_iter()
                    .map(|(item, score)| ScoredItem { item, score })
                    .collect(),
            })
            .collect()
    }

    /// Full per-item score vector for one request, after filters (dropped
    /// candidates are NaN — exactly what the ranking skips). This is the
    /// dense diagnostic path — it materialises `num_items` floats, which
    /// [`Recommender::recommend_batch`] deliberately avoids. Exposed so
    /// tests and tools can compare against reference rankings.
    pub fn score_request(&self, request: &RecommendRequest) -> Vec<f32> {
        let resolved = vec![self.resolve(request)];
        let (tier_queries, units) = self.plan(&resolved);
        let partials = parallel_map(&units, self.threads, |unit| {
            self.unit_parts(unit, &resolved, &tier_queries)
        });
        let mut scores = vec![0.0f32; self.artifact.num_items()];
        for unit in partials {
            for (_, start, part) in unit {
                scores[start..start + part.len()].copy_from_slice(&part);
            }
        }
        self.mask_panel(request, 0, &mut scores);
        scores
    }

    /// Groups shared-parameter queries by tier and enumerates the scoring
    /// units: one per `(tier with queries, panel)` plus one per
    /// `(standalone query, panel)` — standalone predictors are private,
    /// so those queries score alone.
    fn plan(&self, resolved: &[Resolved]) -> ([Vec<usize>; 3], Vec<Unit>) {
        let num_items = self.artifact.num_items();
        let mut tier_queries: [Vec<usize>; 3] = Default::default();
        for (q, res) in resolved.iter().enumerate() {
            if res.solo.is_none() {
                tier_queries[res.tier.index()].push(q);
            }
        }
        let panels: Vec<(usize, usize)> = (0..num_items)
            .step_by(self.panel_items.max(1))
            .map(|start| (start, (start + self.panel_items).min(num_items)))
            .collect();
        let mut units: Vec<Unit> = Vec::new();
        for (t, queries) in tier_queries.iter().enumerate() {
            if !queries.is_empty() {
                units.extend(panels.iter().map(|&(start, end)| Unit::Shared {
                    tier: t,
                    start,
                    end,
                }));
            }
        }
        for (q, res) in resolved.iter().enumerate() {
            if res.solo.is_some() {
                units.extend(panels.iter().map(|&(start, end)| Unit::Solo {
                    query: q,
                    start,
                    end,
                }));
            }
        }
        (tier_queries, units)
    }

    /// Scores one unit's panel for each of its queries, returning
    /// `(query, panel start, panel scores)` triples. Every
    /// `(query, item)` score is computed exactly once, from inputs that do
    /// not depend on batch composition, panel size, or thread count.
    fn unit_parts(
        &self,
        unit: &Unit,
        resolved: &[Resolved],
        tier_queries: &[Vec<usize>; 3],
    ) -> Vec<(usize, usize, Vec<f32>)> {
        match *unit {
            Unit::Shared { tier, start, end } => {
                let scorer = &self.scorers[tier];
                // Precomputed halves are sliced in place; per-batch mode
                // computes the panel's blocked product here; tiled mode
                // serves it from the bounded LRU (computing on miss).
                // All three are bit-identical per row by the SplitNcf
                // contract.
                let local;
                let held;
                let (rows, offset): (&Matrix, usize) = match &self.item_halves {
                    ItemHalves::Full(halves) => (&halves[tier], start),
                    ItemHalves::PerBatch => {
                        let table = self.artifact.table(Tier::ALL[tier]);
                        local = scorer.item_half_block(table, start, end);
                        (&local, 0)
                    }
                    ItemHalves::Tiled(cache) => {
                        held = cache.get(tier, start, || {
                            let table = self.artifact.table(Tier::ALL[tier]);
                            scorer.item_half_block(table, start, end)
                        });
                        (&held, 0)
                    }
                };
                let mut ws = scorer.workspace();
                tier_queries[tier]
                    .iter()
                    .map(|&q| {
                        let part: Vec<f32> = (0..end - start)
                            .map(|r| {
                                scorer.finish(&resolved[q].user_half, rows.row(offset + r), &mut ws)
                            })
                            .collect();
                        (q, start, part)
                    })
                    .collect::<Vec<_>>()
            }
            Unit::Solo { query, start, end } => {
                let (scorer, user) = resolved[query].solo.as_ref().expect("solo unit");
                let record = self.artifact.user(*user).expect("known user");
                let solo = record.solo.as_ref().expect("standalone state");
                let table = self.artifact.table(record.tier);
                let mut block = scorer.item_half_block(table, start, end);
                // Patch the user's privately trained rows (bit-identical
                // to the blocked product by the SplitNcf contract).
                for (&item, row) in &solo.rows {
                    let i = item as usize;
                    if (start..end).contains(&i) {
                        scorer.item_half_into(row, block.row_mut(i - start));
                    }
                }
                let mut ws = scorer.workspace();
                let part: Vec<f32> = (0..end - start)
                    .map(|r| scorer.finish(&resolved[query].user_half, block.row(r), &mut ws))
                    .collect();
                vec![(query, start, part)]
            }
        }
    }

    /// Applies a request's candidate filters to the panel scores starting
    /// at item `start`: failed items become NaN, which the top-K
    /// selection skips.
    fn mask_panel(&self, request: &RecommendRequest, start: usize, part: &mut [f32]) {
        if request.min_popularity == 0 && request.filter.is_none() {
            return;
        }
        for (i, score) in part.iter_mut().enumerate() {
            let item = (start + i) as u32;
            let popular = self.artifact.popularity(item) >= request.min_popularity;
            let kept = request.filter.as_ref().map_or(true, |f| f(item));
            if !(popular && kept) {
                *score = f32::NAN;
            }
        }
    }

    /// Resolves one request: serving tier, user representation (with the
    /// cold-start fallback for unknown users), first-layer user half, and
    /// the merged exclusion mask.
    fn resolve(&self, request: &RecommendRequest) -> Resolved {
        let dims = self.artifact.dims();
        match self.artifact.user(request.user) {
            Some(record) => {
                let tier = record.tier;
                let dim = dims.dim(tier);
                let table = self.artifact.table(tier);
                let overlay = record.solo.as_ref().map(|s| &s.rows);
                let row_of = |item: u32| -> &[f32] {
                    if let Some(overlay) = overlay {
                        if let Some(row) = overlay.get(&item) {
                            return row.as_slice();
                        }
                    }
                    table.row_prefix(item as usize, dim)
                };
                let repr = match self.artifact.model() {
                    ModelKind::Ncf => record.emb.clone(),
                    ModelKind::LightGcn => propagate_lightgcn(
                        &record.emb,
                        record.history.len(),
                        record.history.iter().map(|&item| row_of(item)),
                    ),
                };
                let solo = record
                    .solo
                    .as_ref()
                    .map(|s| (SplitNcf::from_ffn(dim, &s.theta), request.user));
                let user_half = match &solo {
                    Some((scorer, _)) => scorer.user_half(&repr),
                    None => self.scorers[tier.index()].user_half(&repr),
                };
                let mut exclude = request.exclude.clone();
                if request.exclude_seen {
                    exclude.extend_from_slice(&record.history);
                }
                exclude.sort_unstable();
                exclude.dedup();
                Resolved {
                    tier,
                    cold_start: false,
                    user_half,
                    exclude,
                    solo,
                }
            }
            None => {
                // Cold start: unknown user, fallback embedding, no history.
                let tier = self.cold_start_tier;
                let fallback = self.artifact.fallback(tier);
                // With the blend on, mix the popularity prior into the
                // fallback; at γ = 0 the original slice is used untouched
                // (no arithmetic, so responses stay bit-identical).
                let blended: Vec<f32>;
                let base: &[f32] = match &self.pop_prior {
                    Some(prior) if self.cold_start_blend > 0.0 => {
                        let gamma = self.cold_start_blend;
                        blended = fallback
                            .iter()
                            .zip(&prior[tier.index()])
                            .map(|(&f, &p)| (1.0 - gamma) * f + gamma * p)
                            .collect();
                        &blended
                    }
                    _ => fallback,
                };
                let repr = match self.artifact.model() {
                    ModelKind::Ncf => base.to_vec(),
                    ModelKind::LightGcn => propagate_lightgcn(base, 0, std::iter::empty()),
                };
                let mut exclude = request.exclude.clone();
                exclude.sort_unstable();
                exclude.dedup();
                Resolved {
                    tier,
                    cold_start: true,
                    user_half: self.scorers[tier.index()].user_half(&repr),
                    exclude,
                    solo: None,
                }
            }
        }
    }
}
