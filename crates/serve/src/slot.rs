//! Hot-swappable recommender slot.
//!
//! The online pipeline retrains while traffic is live: every N rounds it
//! exports a fresh [`ModelArtifact`](crate::ModelArtifact), builds a
//! [`Recommender`], and swaps it into the serving path without dropping
//! or blocking in-flight work. [`ArtifactSlot`] is the synchronisation
//! point — an ArcSwap-style cell built from `std` parts only:
//!
//! * Readers call [`ArtifactSlot::load`] once per batch and get back a
//!   `(version, Arc<Recommender>)` pair. The lock is held only for the
//!   `Arc` clone (a refcount bump), never across scoring, so a swap
//!   neither waits for in-flight batches nor stalls new ones beyond a
//!   pointer exchange.
//! * Writers call [`ArtifactSlot::swap`], which installs the new
//!   recommender and bumps the monotonically increasing version.
//!   Batches that already loaded the old `Arc` finish on it (the `Arc`
//!   keeps the old artifact alive); the next `load` observes the new
//!   one.
//!
//! The version travels with every response, so each served ranking is
//! attributable to exactly one artifact generation — the property the
//! pipeline's freshness measurements and the hot-swap tests assert.

use crate::Recommender;
use std::sync::{Arc, Mutex};

/// Versioned, swappable handle to the live [`Recommender`].
///
/// Clone the slot itself (cheaply) to share it between the serving
/// threads and whatever drives the swaps.
#[derive(Clone)]
pub struct ArtifactSlot {
    inner: Arc<Mutex<(u64, Arc<Recommender>)>>,
}

impl ArtifactSlot {
    /// Wraps the initial recommender as artifact version 1.
    pub fn new(recommender: Recommender) -> Self {
        Self::with_version(1, recommender)
    }

    /// Wraps a recommender under an explicit starting version (the
    /// pipeline numbers exports itself and keeps the slot in step).
    pub fn with_version(version: u64, recommender: Recommender) -> Self {
        Self {
            inner: Arc::new(Mutex::new((version, Arc::new(recommender)))),
        }
    }

    /// Snapshots the current `(version, recommender)` pair. The returned
    /// `Arc` pins that artifact generation for as long as the caller
    /// holds it, regardless of subsequent swaps.
    pub fn load(&self) -> (u64, Arc<Recommender>) {
        let guard = self.inner.lock().expect("artifact slot poisoned");
        (guard.0, Arc::clone(&guard.1))
    }

    /// Current artifact version.
    pub fn version(&self) -> u64 {
        self.inner.lock().expect("artifact slot poisoned").0
    }

    /// Installs `recommender` as the next version and returns that
    /// version. In-flight readers keep the old `Arc`; the swap itself is
    /// a pointer exchange under the lock.
    pub fn swap(&self, recommender: Recommender) -> u64 {
        let mut guard = self.inner.lock().expect("artifact slot poisoned");
        guard.0 += 1;
        guard.1 = Arc::new(recommender);
        guard.0
    }

    /// Installs `recommender` under an explicit version (must advance).
    ///
    /// # Panics
    /// Panics if `version` does not increase — versions are the
    /// attribution key, so reuse would make responses ambiguous.
    pub fn swap_versioned(&self, version: u64, recommender: Recommender) {
        let mut guard = self.inner.lock().expect("artifact slot poisoned");
        assert!(
            version > guard.0,
            "artifact version must advance ({} -> {version})",
            guard.0
        );
        guard.0 = version;
        guard.1 = Arc::new(recommender);
    }
}

impl std::fmt::Debug for ArtifactSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactSlot")
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExportArtifact, RecommendRequest, RecommenderBuilder};
    use hetefedrec_core::{Ablation, SessionBuilder, Strategy, TrainConfig};
    use hf_dataset::{SplitDataset, SyntheticConfig};
    use hf_models::ModelKind;

    fn recommender(epochs: usize) -> Recommender {
        let data = SyntheticConfig::tiny().generate(7);
        let split = SplitDataset::paper_split(&data, 7);
        let cfg = TrainConfig::test_default(ModelKind::Ncf);
        let mut s = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
            .eval_every(0)
            .build()
            .unwrap();
        for _ in 0..epochs {
            s.run_epoch();
        }
        RecommenderBuilder::new(s.export_artifact())
            .default_k(5)
            .build()
            .unwrap()
    }

    #[test]
    fn swap_bumps_versions_and_old_readers_keep_their_artifact() {
        let slot = ArtifactSlot::new(recommender(0));
        let (v1, old) = slot.load();
        assert_eq!(v1, 1);

        let v2 = slot.swap(recommender(1));
        assert_eq!(v2, 2);
        assert_eq!(slot.version(), 2);

        // The pinned Arc still serves the old generation.
        let old_resp = old.recommend(&RecommendRequest::new(0));
        assert!(!old_resp.items.is_empty());
        let (v, fresh) = slot.load();
        assert_eq!(v, 2);
        let new_resp = fresh.recommend(&RecommendRequest::new(0));
        assert!(!new_resp.items.is_empty());
    }

    #[test]
    fn swaps_are_visible_across_clones_and_threads() {
        let slot = ArtifactSlot::new(recommender(0));
        let reader = slot.clone();
        let handle = std::thread::spawn(move || {
            // Spin until the writer's swap becomes visible.
            loop {
                let (v, r) = reader.load();
                if v == 2 {
                    return r.recommend(&RecommendRequest::new(1));
                }
                std::thread::yield_now();
            }
        });
        slot.swap(recommender(1));
        let resp = handle.join().unwrap();
        assert!(!resp.items.is_empty());
    }

    #[test]
    #[should_panic(expected = "must advance")]
    fn explicit_versions_must_increase() {
        let slot = ArtifactSlot::with_version(5, recommender(0));
        slot.swap_versioned(5, recommender(0));
    }
}
