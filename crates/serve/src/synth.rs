//! Million-scale artifact synthesis.
//!
//! Capacity work needs artifacts whose *scale* is real even though their
//! *weights* are not: proving that lazy loading holds resident memory at
//! a million users requires a million-user file, and training one is
//! beside the point. This module turns an
//! [`hf_dataset::SyntheticProfile`] into a served artifact two ways:
//!
//! * [`ModelArtifact::synthesize`] — materialise everything in memory
//!   (the eager reference, fine up to a few hundred thousand users);
//! * [`ModelArtifact::synthesize_to_file`] — stream the v2 container
//!   straight to disk, holding one table chunk / one user record at a
//!   time plus the 12-byte-per-user directory, so a 1M×1M artifact
//!   builds in bounded memory.
//!
//! **Byte-identity contract**: both paths draw every parameter from
//! purpose-keyed RNG streams in the same order, so
//! `synthesize(p, d, s).save_file(x)` and `synthesize_to_file(p, d, s, x)`
//! write the *same bytes* — pinned by a test, and the foundation the
//! capacity bench stands on (its lazy and eager measurements really are
//! the same model).

use crate::artifact::{tier_mean_fallback, ModelArtifact, TierParams, UserRecord, UserStore};
use crate::binfmt::{
    self, SEC_FALLBACK, SEC_META, SEC_POPULARITY, SEC_TABLES, SEC_THETAS, SEC_USERS,
    TABLE_DIR_ENTRY, THETA_DIR_ENTRY, USER_DIR_ENTRY,
};
use crate::ServeError;
use hetefedrec_core::config::TierDims;
use hf_dataset::{SyntheticProfile, Tier};
use hf_fedsim::wire::Writer;
use hf_models::{paper_predictor_dims, Ffn, ModelKind};
use hf_tensor::rng::{substream, Rng, SeedStream};
use hf_tensor::Matrix;
use std::io::{BufWriter, Seek, SeekFrom, Write as _};

/// Purpose keys for the synthesis RNG streams (disjoint from the
/// dataset-profile key and from every other `Custom` stream).
const KEY_TABLE: u64 = 0x7362_7431; // "sbt1"
const KEY_THETA: u64 = 0x7362_7432;
const KEY_USER: u64 = 0x7362_7433;

/// Init scale for synthesized tables and embeddings.
const SCALE: f32 = 0.1;

/// Table rows synthesized per write chunk on the streaming path.
const ROWS_PER_CHUNK: usize = 4096;

/// What [`ModelArtifact::synthesize_to_file`] wrote — the analytic
/// breakdown capacity benches report alongside measured footprints.
#[derive(Clone, Copy, Debug)]
pub struct SynthStats {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// The `tables` section payload (directory + three matrices).
    pub tables_bytes: u64,
    /// The `users` section payload (directory + all records) — the term
    /// an eager load pays in full and a lazy load caps at the shard LRU.
    pub users_bytes: u64,
    /// Total interactions across all users.
    pub interactions: u64,
}

fn synth_err(e: String) -> ServeError {
    ServeError::Artifact(format!("bad synthetic profile: {e}"))
}

/// Extends `out` with `n` scaled normal draws — the single source of
/// table/embedding values for both synthesis paths.
fn fill_normal(rng: &mut impl Rng, out: &mut Vec<f32>, n: usize) {
    out.extend(std::iter::repeat_with(|| rng.standard_normal_f32() * SCALE).take(n));
}

fn table_rng(seed: u64, t: usize) -> impl Rng {
    substream(seed, SeedStream::Custom(KEY_TABLE), t as u64)
}

fn theta(seed: u64, t: usize, dim: usize) -> Ffn {
    let mut rng = substream(seed, SeedStream::Custom(KEY_THETA), t as u64);
    Ffn::new(&paper_predictor_dims(dim), &mut rng)
}

fn user_emb(seed: u64, user: usize, dim: usize) -> Vec<f32> {
    let mut rng = substream(seed, SeedStream::Custom(KEY_USER), user as u64 + 1);
    let mut emb = Vec::with_capacity(dim);
    fill_normal(&mut rng, &mut emb, dim);
    emb
}

fn synth_user(profile: &SyntheticProfile, dims: &TierDims, seed: u64, user: usize) -> UserRecord {
    let (tier, history) = profile.user(seed, user);
    UserRecord {
        tier,
        emb: user_emb(seed, user, dims.dim(tier)),
        history,
        solo: None,
    }
}

impl ModelArtifact {
    /// Builds an in-memory artifact from a capacity profile: NCF model,
    /// per-tier tables and paper-architecture predictors with seeded
    /// normal weights, one user record per profile user (no standalone
    /// state). Deterministic in `(profile, dims, seed)` and — record for
    /// record, byte for byte — identical to what
    /// [`ModelArtifact::synthesize_to_file`] writes.
    pub fn synthesize(
        profile: &SyntheticProfile,
        dims: TierDims,
        seed: u64,
    ) -> Result<Self, ServeError> {
        profile.validate().map_err(synth_err)?;
        let num_items = profile.num_items;

        let tables: [Matrix; 3] = std::array::from_fn(|t| {
            let cols = dims.dim(Tier::ALL[t]);
            let mut rng = table_rng(seed, t);
            let mut data = Vec::with_capacity(num_items * cols);
            fill_normal(&mut rng, &mut data, num_items * cols);
            Matrix::from_vec(num_items, cols, data)
        });
        let thetas: [Ffn; 3] = std::array::from_fn(|t| theta(seed, t, dims.dim(Tier::ALL[t])));

        let mut popularity = vec![0u32; num_items];
        let users: Vec<UserRecord> = (0..profile.num_users)
            .map(|u| {
                let record = synth_user(profile, &dims, seed, u);
                for &item in &record.history {
                    popularity[item as usize] += 1;
                }
                record
            })
            .collect();
        let fallback = tier_mean_fallback(&dims, users.iter().map(|u| (u.tier, &u.emb[..])));

        Ok(Self {
            model: ModelKind::Ncf,
            dims,
            standalone: false,
            num_items,
            params: TierParams::Eager {
                tables: Box::new(tables),
                thetas: Box::new(thetas),
            },
            users: UserStore::Eager(users),
            popularity,
            fallback,
        })
    }

    /// Streams a synthesized v2 artifact straight to `path` in bounded
    /// memory: tables go out in [`ROWS_PER_CHUNK`]-row chunks, user
    /// records one at a time (their directory accumulates at 12 bytes
    /// per user and is back-patched at the end). Byte-identical to
    /// `synthesize(...)?.save_file(path)`.
    pub fn synthesize_to_file(
        profile: &SyntheticProfile,
        dims: TierDims,
        seed: u64,
        path: impl AsRef<std::path::Path>,
    ) -> Result<SynthStats, ServeError> {
        profile.validate().map_err(synth_err)?;
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    ServeError::Artifact(format!("cannot create {}: {e}", parent.display()))
                })?;
            }
        }
        let file = std::fs::File::create(path)
            .map_err(|e| ServeError::Artifact(format!("cannot write {}: {e}", path.display())))?;
        let io = |e: std::io::Error| {
            ServeError::Artifact(format!("cannot write {}: {e}", path.display()))
        };
        let mut out = BufWriter::new(file);
        let num_items = profile.num_items;
        let num_users = profile.num_users;

        // Header + meta (binfmt's exact bytes).
        let mut w = Writer::new();
        w.put_bytes(binfmt::MAGIC);
        w.put_u16_le(binfmt::BINFMT_VERSION);
        w.put_u32_le(crate::artifact::ARTIFACT_VERSION as u32);
        let meta = binfmt::encode_meta_parts(ModelKind::Ncf, false, &dims, num_items, num_users);
        w.put_u8(SEC_META);
        w.put_u64_le(meta.len() as u64);
        w.put_bytes(meta.as_slice());
        out.write_all(w.as_slice()).map_err(io)?;

        // Tables: section length and directory are analytic (the payload
        // of an r×c matrix is 12 + 4rc bytes), so no back-patching.
        let table_payload = |t: usize| 12 + 4 * (num_items * dims.dim(Tier::ALL[t])) as u64;
        let tables_bytes = 3 * TABLE_DIR_ENTRY + (0..3).map(table_payload).sum::<u64>();
        let mut w = Writer::new();
        w.put_u8(SEC_TABLES);
        w.put_u64_le(tables_bytes);
        let mut off = 0u64;
        for t in 0..3 {
            w.put_u64_le(off);
            w.put_u64_le(table_payload(t));
            w.put_u64_le(num_items as u64);
            w.put_u32_le(dims.dim(Tier::ALL[t]) as u32);
            off += table_payload(t);
        }
        out.write_all(w.as_slice()).map_err(io)?;
        for t in 0..3 {
            let cols = dims.dim(Tier::ALL[t]);
            let mut rng = table_rng(seed, t);
            let mut w = Writer::with_capacity(16 + 4 * ROWS_PER_CHUNK * cols);
            w.put_u64_le(num_items as u64);
            w.put_u32_le(cols as u32);
            let mut row = 0;
            let mut chunk = Vec::with_capacity(ROWS_PER_CHUNK * cols);
            while row < num_items {
                let rows = ROWS_PER_CHUNK.min(num_items - row);
                chunk.clear();
                fill_normal(&mut rng, &mut chunk, rows * cols);
                for &x in &chunk {
                    w.put_f32_le(x);
                }
                out.write_all(w.as_slice()).map_err(io)?;
                w = Writer::with_capacity(4 * ROWS_PER_CHUNK * cols);
                row += rows;
            }
        }

        // Thetas: small enough to assemble whole.
        let thetas: [Ffn; 3] = std::array::from_fn(|t| theta(seed, t, dims.dim(Tier::ALL[t])));
        let payloads: Vec<Writer> = thetas
            .iter()
            .map(|f| {
                let mut w = Writer::new();
                binfmt::put_ffn(&mut w, f);
                w
            })
            .collect();
        let mut w = Writer::new();
        w.put_u8(SEC_THETAS);
        w.put_u64_le(3 * THETA_DIR_ENTRY + payloads.iter().map(|p| p.len() as u64).sum::<u64>());
        let mut off = 0u64;
        for p in &payloads {
            w.put_u64_le(off);
            w.put_u64_le(p.len() as u64);
            off += p.len() as u64;
        }
        for p in &payloads {
            w.put_bytes(p.as_slice());
        }
        out.write_all(w.as_slice()).map_err(io)?;

        // Users: length and directory are only known after the payload
        // streams, so write placeholders and back-patch. The directory
        // accumulates in memory (12 B/user — 12 MB at a million users).
        let section_len_pos = out.stream_position().map_err(io)?;
        let mut w = Writer::new();
        w.put_u8(SEC_USERS);
        w.put_u64_le(0); // patched below
        out.write_all(w.as_slice()).map_err(io)?;
        let dir_pos = out.stream_position().map_err(io)?;
        let dir_len = num_users as u64 * USER_DIR_ENTRY;
        {
            let zeros = vec![0u8; 1 << 16];
            let mut left = dir_len;
            while left > 0 {
                let n = (zeros.len() as u64).min(left) as usize;
                out.write_all(&zeros[..n]).map_err(io)?;
                left -= n as u64;
            }
        }
        let mut dir: Vec<(u64, u32)> = Vec::with_capacity(num_users);
        let mut popularity = vec![0u32; num_items];
        let mut fb_sum: [Vec<f32>; 3] =
            std::array::from_fn(|t| vec![0.0f32; dims.dim(Tier::ALL[t])]);
        let mut fb_count = [0usize; 3];
        let mut payload_off = 0u64;
        let mut interactions = 0u64;
        for u in 0..num_users {
            let record = synth_user(profile, &dims, seed, u);
            for &item in &record.history {
                popularity[item as usize] += 1;
            }
            interactions += record.history.len() as u64;
            hf_tensor::ops::axpy_slice(&mut fb_sum[record.tier.index()], 1.0, &record.emb);
            fb_count[record.tier.index()] += 1;
            let mut w = Writer::new();
            binfmt::put_user(&mut w, &record);
            out.write_all(w.as_slice()).map_err(io)?;
            dir.push((payload_off, w.len() as u32));
            payload_off += w.len() as u64;
        }
        let users_bytes = dir_len + payload_off;
        // Back-patch the section length, then the directory.
        out.seek(SeekFrom::Start(section_len_pos + 1)).map_err(io)?;
        out.write_all(&users_bytes.to_le_bytes()).map_err(io)?;
        out.seek(SeekFrom::Start(dir_pos)).map_err(io)?;
        let mut w = Writer::with_capacity(12 * 8192);
        for (i, &(off, len)) in dir.iter().enumerate() {
            w.put_u64_le(off);
            w.put_u32_le(len);
            if w.len() >= 12 * 8192 || i + 1 == dir.len() {
                out.write_all(w.as_slice()).map_err(io)?;
                w = Writer::with_capacity(12 * 8192);
            }
        }
        out.seek(SeekFrom::End(0)).map_err(io)?;

        // Popularity.
        let mut w = Writer::with_capacity(9 + 4 * num_items);
        w.put_u8(SEC_POPULARITY);
        w.put_u64_le(4 * num_items as u64);
        for &p in &popularity {
            w.put_u32_le(p);
        }
        out.write_all(w.as_slice()).map_err(io)?;

        // Fallback: same mean arithmetic as `tier_mean_fallback`.
        for (f, &n) in fb_sum.iter_mut().zip(&fb_count) {
            if n > 0 {
                let inv = 1.0 / n as f32;
                f.iter_mut().for_each(|x| *x *= inv);
            }
        }
        let mut w = Writer::new();
        let fb_len: u64 = fb_sum.iter().map(|f| 4 + 4 * f.len() as u64).sum();
        w.put_u8(SEC_FALLBACK);
        w.put_u64_le(fb_len);
        for f in &fb_sum {
            w.put_u32_le(f.len() as u32);
            for &x in f {
                w.put_f32_le(x);
            }
        }
        out.write_all(w.as_slice()).map_err(io)?;
        out.flush().map_err(io)?;
        let file_bytes = out.stream_position().map_err(io)?;

        Ok(SynthStats {
            file_bytes,
            tables_bytes,
            users_bytes,
            interactions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_dataset::SyntheticProfile;

    #[test]
    fn streaming_and_eager_synthesis_are_byte_identical() {
        let profile = SyntheticProfile::new(600, 900);
        let dims = TierDims::new(4, 8, 16);
        let dir = std::env::temp_dir().join(format!("hf_synth_test_{}", std::process::id()));
        let path = dir.join("streamed.hfa");
        let stats = ModelArtifact::synthesize_to_file(&profile, dims, 42, &path).expect("streamed");
        let streamed = std::fs::read(&path).expect("file");
        let eager = ModelArtifact::synthesize(&profile, dims, 42).expect("eager");
        assert_eq!(
            eager.to_bytes(),
            streamed,
            "streaming writer must reproduce the eager encoder byte for byte"
        );
        assert_eq!(stats.file_bytes, streamed.len() as u64);
        assert!(stats.users_bytes > 0 && stats.tables_bytes > 0);
        let total: u64 = (0..eager.num_items() as u32)
            .map(|i| eager.popularity(i) as u64)
            .sum();
        assert_eq!(total, stats.interactions);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synthesis_is_deterministic_and_validated() {
        let profile = SyntheticProfile::new(50, 200);
        let dims = TierDims::new(4, 8, 16);
        let a = ModelArtifact::synthesize(&profile, dims, 7).unwrap();
        let b = ModelArtifact::synthesize(&profile, dims, 7).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
        let c = ModelArtifact::synthesize(&profile, dims, 8).unwrap();
        assert_ne!(a.to_bytes(), c.to_bytes(), "seed must matter");
        assert!(ModelArtifact::synthesize(&SyntheticProfile::new(0, 10), dims, 1).is_err());
    }
}
