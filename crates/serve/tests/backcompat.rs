//! Back-compat contract: v1 `HFAB` artifacts written by older releases
//! must keep loading, and must survive re-encoding as v2 with nothing
//! lost — the fixture under `tests/fixtures/` is a frozen v1 byte
//! stream, so this test fails if the v1 reader drifts.

use hetefedrec_core::config::TierDims;
use hf_dataset::SyntheticProfile;
use hf_serve::{LazyConfig, ModelArtifact, RecommendRequest, RecommenderBuilder};
use std::path::PathBuf;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/artifact_v1.hfa"
);

/// The artifact the committed fixture was generated from (small enough
/// to keep the fixture a few tens of KiB, deterministic by seed).
fn fixture_source() -> ModelArtifact {
    ModelArtifact::synthesize(
        &SyntheticProfile::new(48, 120),
        TierDims::new(4, 8, 16),
        2024,
    )
    .expect("fixture profile synthesizes")
}

#[test]
fn v1_fixture_loads_and_reencodes_bit_identically_as_v2() {
    let from_v1 = ModelArtifact::load_file(FIXTURE).expect("v1 fixture loads");
    let source = fixture_source();

    // The decoded v1 document carries the same state the encoder saw...
    assert_eq!(from_v1.num_users(), source.num_users());
    assert_eq!(from_v1.num_items(), source.num_items());
    assert_eq!(
        from_v1.to_bytes(),
        source.to_bytes(),
        "v1 → v2 re-encode drifted"
    );

    // ...and a save_file → load_file round trip through the current (v2)
    // container reproduces it byte for byte, eagerly and lazily.
    let dir = std::env::temp_dir().join(format!("hf_backcompat_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reencoded = dir.join("reencoded.hfa");
    from_v1.save_file(&reencoded).expect("save as v2");
    let eager = ModelArtifact::load_file(&reencoded).expect("v2 reload");
    let lazy = ModelArtifact::load_file_lazy(&reencoded, LazyConfig::default()).expect("v2 lazy");
    assert!(lazy.is_lazy());
    assert_eq!(from_v1.to_bytes(), eager.to_bytes());
    assert_eq!(from_v1.to_bytes(), lazy.to_bytes());

    // Rankings are bit-identical across the v1 and v2 loads.
    let reqs: Vec<_> = (0..from_v1.num_users())
        .map(RecommendRequest::new)
        .collect();
    let serve = |a: ModelArtifact| {
        RecommenderBuilder::new(a)
            .default_k(8)
            .panel_items(32)
            .build()
            .unwrap()
            .recommend_batch(&reqs)
    };
    let want = serve(from_v1);
    for got in [serve(eager), serve(lazy)] {
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.items.len(), b.items.len());
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.item, y.item, "user {}", a.user);
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "user {}", a.user);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Regenerates the committed fixture. Run manually after an *intentional*
/// v1-encoder change (there should never be one — v1 is frozen):
/// `cargo test -p hf_serve --test backcompat -- --ignored`
#[test]
#[ignore = "writes the committed fixture; run only to regenerate it"]
fn regenerate_v1_fixture() {
    let bytes = hf_serve::binfmt::encode_v1(&fixture_source());
    let path = PathBuf::from(FIXTURE);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, &bytes).unwrap();
    println!("wrote {} bytes to {}", bytes.len(), path.display());
}
