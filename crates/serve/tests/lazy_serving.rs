//! The capacity determinism contract: lazy, tiled, and sharded serving
//! paths must produce **bit-identical** rankings to the eager path,
//! across thread counts, while actually bounding what is resident.

use hetefedrec_core::config::TierDims;
use hf_dataset::SyntheticProfile;
use hf_serve::{
    ItemHalfMode, LazyConfig, ModelArtifact, RecommendRequest, RecommenderBuilder, ServeError,
};

fn synth_file(users: usize, items: usize, seed: u64, name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hf_lazy_serving_{}", std::process::id()));
    let path = dir.join(name);
    let profile = SyntheticProfile::new(users, items);
    ModelArtifact::synthesize_to_file(&profile, TierDims::new(4, 8, 16), seed, &path)
        .expect("synthesize");
    path
}

fn requests(num_users: usize) -> Vec<RecommendRequest> {
    (0..num_users)
        .step_by(7)
        .map(RecommendRequest::new)
        .chain([RecommendRequest::new(usize::MAX)]) // cold start in the mix
        .collect()
}

fn assert_bit_identical(
    a: &[hf_serve::RecommendResponse],
    b: &[hf_serve::RecommendResponse],
    label: &str,
) {
    assert_eq!(a.len(), b.len(), "{label}");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.user, y.user, "{label}");
        assert_eq!(x.tier, y.tier, "{label}");
        assert_eq!(x.cold_start, y.cold_start, "{label}");
        assert_eq!(x.items.len(), y.items.len(), "{label} user {}", x.user);
        for (i, j) in x.items.iter().zip(&y.items) {
            assert_eq!(i.item, j.item, "{label} user {}", x.user);
            assert_eq!(
                i.score.to_bits(),
                j.score.to_bits(),
                "{label} user {} item {}",
                x.user,
                i.item
            );
        }
    }
}

#[test]
fn lazy_tiled_sharded_paths_match_eager_bitwise_across_threads() {
    let path = synth_file(300, 500, 21, "invariance.hfa");
    let reqs = requests(300);

    // Reference: eager artifact, precomputed halves, one thread.
    let eager = ModelArtifact::load_file(&path).expect("eager load");
    assert!(!eager.is_lazy());
    let reference = RecommenderBuilder::new(eager)
        .default_k(9)
        .panel_items(64)
        .build()
        .expect("reference build")
        .recommend_batch(&reqs);

    // Tiny caches force constant eviction and re-decode mid-batch: three
    // shards of two records, three resident item-half tiles.
    let tiny = LazyConfig {
        user_shards: 3,
        shard_capacity: 2,
    };
    let modes = [
        ("precomputed", ItemHalfMode::Precomputed),
        ("per-batch", ItemHalfMode::PerBatch),
        ("tiled", ItemHalfMode::Tiled { max_panels: 3 }),
    ];
    for (mode_name, mode) in modes {
        for threads in [1usize, 2, 8] {
            let lazy = ModelArtifact::load_file_lazy(&path, tiny).expect("lazy load");
            assert!(lazy.is_lazy());
            assert_eq!(lazy.cached_user_records(), 0, "nothing touched yet");
            let r = RecommenderBuilder::new(lazy)
                .default_k(9)
                .panel_items(64)
                .threads(threads)
                .item_half_mode(mode)
                .build()
                .expect("lazy build");
            let got = r.recommend_batch(&reqs);
            assert_bit_identical(&reference, &got, &format!("{mode_name}/{threads} threads"));
            // The resident bound holds: at most shards × capacity records.
            assert!(
                r.artifact().cached_user_records() <= 3 * 2,
                "{mode_name}/{threads}: {} records resident",
                r.artifact().cached_user_records()
            );
            if let ItemHalfMode::Tiled { max_panels } = mode {
                assert!(
                    r.cached_item_half_panels() <= max_panels,
                    "{mode_name}/{threads}: {} tiles resident",
                    r.cached_item_half_panels()
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn eager_tiled_matches_eager_precomputed() {
    // Tiling is independent of the artifact backend.
    let path = synth_file(120, 300, 5, "tiled_eager.hfa");
    let reqs = requests(120);
    let reference = RecommenderBuilder::new(ModelArtifact::load_file(&path).unwrap())
        .default_k(6)
        .panel_items(50)
        .build()
        .unwrap()
        .recommend_batch(&reqs);
    let tiled = RecommenderBuilder::new(ModelArtifact::load_file(&path).unwrap())
        .default_k(6)
        .panel_items(50)
        .item_half_mode(ItemHalfMode::Tiled { max_panels: 1 })
        .build()
        .unwrap();
    assert_bit_identical(&reference, &tiled.recommend_batch(&reqs), "eager tiled");
    assert!(tiled.cached_item_half_panels() <= 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn lazy_artifact_reencodes_bit_identically() {
    // to_bytes() on a lazy artifact streams every record through the
    // bounded store and must reproduce the eager encoder's bytes.
    let path = synth_file(90, 150, 13, "reencode.hfa");
    let eager = ModelArtifact::load_file(&path).unwrap();
    let lazy = ModelArtifact::load_file_lazy(
        &path,
        LazyConfig {
            user_shards: 2,
            shard_capacity: 3,
        },
    )
    .unwrap();
    assert_eq!(eager.to_bytes(), lazy.to_bytes());
    assert_eq!(eager.num_users(), lazy.num_users());
    assert_eq!(eager.num_items(), lazy.num_items());
    std::fs::remove_file(&path).ok();
}

#[test]
fn lazy_touch_tracking_is_bounded_by_what_requests_touch() {
    let path = synth_file(400, 200, 3, "touched.hfa");
    let lazy = ModelArtifact::load_file_lazy(&path, LazyConfig::default()).unwrap();
    let r = RecommenderBuilder::new(lazy)
        .default_k(5)
        .item_half_mode(ItemHalfMode::Tiled { max_panels: 8 })
        .build()
        .unwrap();
    // Serve 10 distinct users: at most 10 records decode (default caches
    // are far larger than 10, so nothing evicts either).
    let reqs: Vec<_> = (0..10).map(RecommendRequest::new).collect();
    let _ = r.recommend_batch(&reqs);
    let cached = r.artifact().cached_user_records();
    assert!(
        (1..=10).contains(&cached),
        "10 users touched but {cached} records resident"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn lazy_open_validates_config_and_path() {
    let path = synth_file(20, 60, 1, "cfgcheck.hfa");
    for (cfg, field) in [
        (
            LazyConfig {
                user_shards: 0,
                shard_capacity: 4,
            },
            "user_shards",
        ),
        (
            LazyConfig {
                user_shards: 4,
                shard_capacity: 0,
            },
            "shard_capacity",
        ),
    ] {
        match ModelArtifact::load_file_lazy(&path, cfg) {
            Err(ServeError::Config { field: f, .. }) => assert_eq!(f, field),
            other => panic!("expected Config error for {field}, got {other:?}"),
        }
    }
    assert!(ModelArtifact::load_file_lazy("/nonexistent/x.hfa", LazyConfig::default()).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn lazy_open_of_v1_files_falls_back_to_eager() {
    let profile = SyntheticProfile::new(30, 80);
    let artifact = ModelArtifact::synthesize(&profile, TierDims::new(4, 8, 16), 9).unwrap();
    let v1 = hf_serve::binfmt::encode_v1(&artifact);
    let dir = std::env::temp_dir().join(format!("hf_lazy_v1_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("old.hfa");
    std::fs::write(&path, &v1).unwrap();
    let loaded = ModelArtifact::load_file_lazy(&path, LazyConfig::default()).expect("v1 fallback");
    assert!(
        !loaded.is_lazy(),
        "v1 has no directories; must load eagerly"
    );
    assert_eq!(loaded.to_bytes(), artifact.to_bytes());
    std::fs::remove_dir_all(&dir).ok();
}
