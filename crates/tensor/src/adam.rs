//! Adam optimiser state, dense and sparse-row flavours.
//!
//! The paper adopts Adam with learning rate 0.001 (Section V-D). Two usage
//! patterns appear in the reproduction:
//!
//! * [`Adam`] — dense state over a flat parameter vector, used for FFN
//!   predictor parameters and per-client private user embeddings.
//! * [`SparseRowAdam`] — row-keyed state for embedding tables where a step
//!   only touches the rows present in a batch (a federated client touches
//!   only its own items; the server touches only rows that received
//!   updates). Moment tensors are allocated lazily per row, and the
//!   per-row timestep is tracked individually so bias correction stays
//!   exact for rarely-updated rows.

/// Adam hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate (paper: 0.001).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator stabiliser.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

impl AdamConfig {
    /// Convenience constructor overriding only the learning rate.
    pub fn with_lr(lr: f32) -> Self {
        Self {
            lr,
            ..Self::default()
        }
    }
}

/// Dense Adam state over a flat parameter vector.
#[derive(Clone, Debug)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates state for `len` parameters.
    pub fn new(len: usize, config: AdamConfig) -> Self {
        Self {
            config,
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    /// Number of tracked parameters.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// `true` when tracking zero parameters.
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update: `params -= lr * m̂ / (sqrt(v̂) + eps)`.
    ///
    /// # Panics
    /// Panics if `params` or `grads` length differs from the state length.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "param length mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad length mismatch");
        self.t += 1;
        let AdamConfig {
            lr,
            beta1,
            beta2,
            eps,
        } = self.config;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
            self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

/// Adam state keyed by embedding-table row, for sparse updates.
///
/// Rows never seen carry no memory cost beyond a `None` slot.
#[derive(Clone, Debug)]
pub struct SparseRowAdam {
    config: AdamConfig,
    dim: usize,
    rows: Vec<Option<RowState>>,
}

#[derive(Clone, Debug)]
struct RowState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl SparseRowAdam {
    /// Creates state for a table of `num_rows` rows of width `dim`.
    pub fn new(num_rows: usize, dim: usize, config: AdamConfig) -> Self {
        Self {
            config,
            dim,
            rows: vec![None; num_rows],
        }
    }

    /// Embedding width this state was created for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows that have received at least one update.
    pub fn active_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    /// Applies an Adam update to a single row (or row prefix: `grad` may be
    /// shorter than `dim`, in which case only the leading entries step —
    /// the heterogeneous-tier case where a small-tier update reaches a wide
    /// table).
    ///
    /// # Panics
    /// Panics if `row` is out of range, `params` is shorter than `grad`,
    /// or `grad` is wider than `dim`.
    pub fn step_row(&mut self, row: usize, params: &mut [f32], grad: &[f32]) {
        assert!(grad.len() <= self.dim, "grad wider than table dim");
        assert!(params.len() >= grad.len(), "param slice shorter than grad");
        let state = self.rows[row].get_or_insert_with(|| RowState {
            m: vec![0.0; self.dim],
            v: vec![0.0; self.dim],
            t: 0,
        });
        state.t += 1;
        let AdamConfig {
            lr,
            beta1,
            beta2,
            eps,
        } = self.config;
        let bc1 = 1.0 - beta1.powi(state.t as i32);
        let bc2 = 1.0 - beta2.powi(state.t as i32);
        for i in 0..grad.len() {
            let g = grad[i];
            state.m[i] = beta1 * state.m[i] + (1.0 - beta1) * g;
            state.v[i] = beta2 * state.v[i] + (1.0 - beta2) * g * g;
            let m_hat = state.m[i] / bc1;
            let v_hat = state.v[i] / bc2;
            params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint (de)serialization
// ---------------------------------------------------------------------------

use crate::ser::{obj, JsonError, JsonValue, ToJson};

impl ToJson for AdamConfig {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("lr", &self.lr)
                .field("beta1", &self.beta1)
                .field("beta2", &self.beta2)
                .field("eps", &self.eps);
        });
    }
}

impl AdamConfig {
    /// Restores a checkpointed configuration.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        Ok(Self {
            lr: v.get("lr")?.as_f32()?,
            beta1: v.get("beta1")?.as_f32()?,
            beta2: v.get("beta2")?.as_f32()?,
            eps: v.get("eps")?.as_f32()?,
        })
    }
}

impl ToJson for Adam {
    fn write_json(&self, out: &mut String) {
        obj(out, |o| {
            o.field("config", &self.config)
                .field("t", &self.t)
                .field("m", &self.m)
                .field("v", &self.v);
        });
    }
}

impl Adam {
    /// Restores checkpointed optimiser state (moments and timestep).
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let m = v.get("m")?.as_f32_vec()?;
        let vv = v.get("v")?.as_f32_vec()?;
        if m.len() != vv.len() {
            return Err(JsonError::msg("adam moment length mismatch"));
        }
        Ok(Self {
            config: AdamConfig::from_json(v.get("config")?)?,
            t: v.get("t")?.as_u64()?,
            m,
            v: vv,
        })
    }
}

impl ToJson for SparseRowAdam {
    fn write_json(&self, out: &mut String) {
        struct Rows<'a>(&'a [Option<RowState>]);
        impl ToJson for Rows<'_> {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                for (row, state) in self.0.iter().enumerate() {
                    if let Some(s) = state {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        obj(out, |o| {
                            o.field("row", &row)
                                .field("t", &s.t)
                                .field("m", &s.m)
                                .field("v", &s.v);
                        });
                    }
                }
                out.push(']');
            }
        }
        obj(out, |o| {
            o.field("config", &self.config)
                .field("dim", &self.dim)
                .field("num_rows", &self.rows.len())
                .field("rows", &Rows(&self.rows));
        });
    }
}

impl SparseRowAdam {
    /// Restores checkpointed row-keyed optimiser state. Only rows that
    /// had received updates are present in the snapshot; all others come
    /// back as their lazily-allocated `None` slot.
    pub fn from_json(v: &JsonValue<'_>) -> Result<Self, JsonError> {
        let config = AdamConfig::from_json(v.get("config")?)?;
        let dim = v.get("dim")?.as_usize()?;
        let num_rows = v.get("num_rows")?.as_usize()?;
        let mut rows: Vec<Option<RowState>> = vec![None; num_rows];
        for entry in v.get("rows")?.as_arr()? {
            let row = entry.get("row")?.as_usize()?;
            if row >= num_rows {
                return Err(JsonError::msg(format!("row {row} out of range {num_rows}")));
            }
            let m = entry.get("m")?.as_f32_vec()?;
            let mv = entry.get("v")?.as_f32_vec()?;
            if m.len() != dim || mv.len() != dim {
                return Err(JsonError::msg("sparse adam row width mismatch"));
            }
            rows[row] = Some(RowState {
                m,
                v: mv,
                t: entry.get("t")?.as_u64()?,
            });
        }
        Ok(Self { config, dim, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimising f(x) = (x-3)² should converge to 3.
    #[test]
    fn dense_adam_minimises_quadratic() {
        let mut adam = Adam::new(1, AdamConfig::with_lr(0.1));
        let mut x = [0.0_f32];
        for _ in 0..500 {
            let g = [2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // Adam's bias correction makes the very first step ≈ lr * sign(g).
        let mut adam = Adam::new(1, AdamConfig::with_lr(0.01));
        let mut x = [1.0_f32];
        adam.step(&mut x, &[42.0]);
        assert!((x[0] - (1.0 - 0.01)).abs() < 1e-4, "x = {}", x[0]);
    }

    #[test]
    fn zero_gradient_is_a_noop() {
        let mut adam = Adam::new(3, AdamConfig::default());
        let mut x = [1.0, 2.0, 3.0];
        adam.step(&mut x, &[0.0, 0.0, 0.0]);
        assert_eq!(x, [1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "grad length mismatch")]
    fn dense_rejects_mismatched_grad() {
        let mut adam = Adam::new(2, AdamConfig::default());
        let mut x = [0.0, 0.0];
        adam.step(&mut x, &[1.0]);
    }

    #[test]
    fn sparse_rows_are_lazily_allocated() {
        let mut adam = SparseRowAdam::new(100, 4, AdamConfig::default());
        assert_eq!(adam.active_rows(), 0);
        let mut row = [0.0; 4];
        adam.step_row(7, &mut row, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(adam.active_rows(), 1);
    }

    #[test]
    fn sparse_per_row_timesteps_match_dense_behaviour() {
        // A row updated in isolation must follow the same trajectory as a
        // dense Adam on that row alone.
        let cfg = AdamConfig::with_lr(0.05);
        let mut sparse = SparseRowAdam::new(10, 2, cfg);
        let mut dense = Adam::new(2, cfg);
        let mut row_sparse = [1.0_f32, -1.0];
        let mut row_dense = [1.0_f32, -1.0];
        for step in 0..20 {
            let g = [0.3 + step as f32 * 0.01, -0.2];
            sparse.step_row(3, &mut row_sparse, &g);
            dense.step(&mut row_dense, &g);
        }
        for (a, b) in row_sparse.iter().zip(&row_dense) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn sparse_prefix_update_leaves_tail_untouched() {
        let mut adam = SparseRowAdam::new(4, 6, AdamConfig::with_lr(0.1));
        let mut row = [5.0_f32; 6];
        adam.step_row(0, &mut row, &[1.0, 1.0]); // prefix width 2
        assert_ne!(row[0], 5.0);
        assert_ne!(row[1], 5.0);
        assert!(row[2..].iter().all(|&x| x == 5.0));
    }

    #[test]
    #[should_panic(expected = "grad wider")]
    fn sparse_rejects_overwide_grad() {
        let mut adam = SparseRowAdam::new(2, 2, AdamConfig::default());
        let mut row = [0.0; 3];
        adam.step_row(0, &mut row, &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn dense_adam_checkpoint_resumes_bit_identically() {
        use crate::ser::parse_json;
        let mut a = Adam::new(3, AdamConfig::with_lr(0.05));
        let mut x = [1.0_f32, -2.0, 0.5];
        for step in 0..7 {
            a.step(&mut x, &[0.1 * step as f32, -0.2, 0.3]);
        }
        let mut b = Adam::from_json(&parse_json(&a.to_json()).unwrap()).unwrap();
        let mut xa = x;
        let mut xb = x;
        for _ in 0..5 {
            a.step(&mut xa, &[0.4, -0.1, 0.05]);
            b.step(&mut xb, &[0.4, -0.1, 0.05]);
        }
        assert_eq!(xa.map(f32::to_bits), xb.map(f32::to_bits));
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    fn sparse_adam_checkpoint_resumes_bit_identically() {
        use crate::ser::parse_json;
        let mut a = SparseRowAdam::new(8, 2, AdamConfig::with_lr(0.1));
        let mut rows = [[0.5_f32, -0.5]; 8];
        for i in [1usize, 5, 5, 7] {
            a.step_row(i, &mut rows[i], &[0.3, -0.2]);
        }
        let mut b = SparseRowAdam::from_json(&parse_json(&a.to_json()).unwrap()).unwrap();
        assert_eq!(b.active_rows(), a.active_rows());
        assert_eq!(b.dim(), 2);
        let mut ra = rows;
        let mut rb = rows;
        for i in [0usize, 5, 7] {
            a.step_row(i, &mut ra[i], &[-0.1, 0.4]);
            b.step_row(i, &mut rb[i], &[-0.1, 0.4]);
        }
        for (x, y) in ra.iter().flatten().zip(rb.iter().flatten()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sparse_minimises_per_row_quadratics() {
        let mut adam = SparseRowAdam::new(3, 1, AdamConfig::with_lr(0.1));
        let targets = [1.0_f32, -2.0, 0.5];
        let mut rows = [[0.0_f32]; 3];
        for _ in 0..400 {
            for (i, target) in targets.iter().enumerate() {
                let g = [2.0 * (rows[i][0] - target)];
                adam.step_row(i, &mut rows[i], &g);
            }
        }
        for (row, target) in rows.iter().zip(&targets) {
            assert!((row[0] - target).abs() < 2e-2);
        }
    }
}
