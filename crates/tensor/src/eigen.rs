//! Cyclic Jacobi eigen-solver for symmetric matrices.
//!
//! The only spectral computation the reproduction needs is the eigenvalue
//! set of small (`N x N`, `N ≤ 128`) covariance matrices — the singular
//! values reported in Table V. The cyclic Jacobi method is ideal at this
//! scale: unconditionally convergent for symmetric input, ~N³ per sweep,
//! and a few dozen lines with no external dependency.

use crate::matrix::Matrix;

/// Eigenvalues of a symmetric matrix, ascending order.
///
/// Sweeps Jacobi rotations until the off-diagonal Frobenius mass falls
/// below `tol * ‖A‖_F` or `max_sweeps` is reached. For symmetric positive
/// semi-definite input (covariance matrices) the result is also the set of
/// singular values.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn symmetric_eigenvalues(a: &Matrix, tol: f32, max_sweeps: usize) -> Vec<f32> {
    assert_eq!(a.rows(), a.cols(), "eigenvalues need a square matrix");
    let n = a.rows();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![a.get(0, 0)];
    }

    let mut m = a.clone();
    let norm = m.frobenius_norm().max(f32::MIN_POSITIVE);
    let stop = (tol * norm) as f64;

    for _ in 0..max_sweeps {
        if off_diagonal_norm(&m) <= stop {
            break;
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                rotate(&mut m, p, q);
            }
        }
    }

    let mut eig: Vec<f32> = (0..n).map(|i| m.get(i, i)).collect();
    eig.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalues are finite"));
    eig
}

/// Frobenius norm of the strictly off-diagonal part.
fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0_f64;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let x = m.get(i, j) as f64;
                s += x * x;
            }
        }
    }
    s.sqrt()
}

/// One Jacobi rotation zeroing element (p, q) of the symmetric matrix.
fn rotate(m: &mut Matrix, p: usize, q: usize) {
    let apq = m.get(p, q) as f64;
    if apq.abs() < 1e-30 {
        return;
    }
    let app = m.get(p, p) as f64;
    let aqq = m.get(q, q) as f64;
    let theta = (aqq - app) / (2.0 * apq);
    // Stable tangent computation (Golub & Van Loan 8.4).
    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
    let c = 1.0 / (t * t + 1.0).sqrt();
    let s = t * c;

    let n = m.rows();
    for k in 0..n {
        let akp = m.get(k, p) as f64;
        let akq = m.get(k, q) as f64;
        m.set(k, p, (c * akp - s * akq) as f32);
        m.set(k, q, (s * akp + c * akq) as f32);
    }
    for k in 0..n {
        let apk = m.get(p, k) as f64;
        let aqk = m.get(q, k) as f64;
        m.set(p, k, (c * apk - s * aqk) as f32);
        m.set(q, k, (s * apk + c * aqk) as f32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::rng::{stream, SeedStream};

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_the_diagonal() {
        let m = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        assert_close(&symmetric_eigenvalues(&m, 1e-9, 64), &[1.0, 2.0, 3.0], 1e-5);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let m = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        assert_close(&symmetric_eigenvalues(&m, 1e-9, 64), &[1.0, 3.0], 1e-5);
    }

    #[test]
    fn trace_and_frobenius_are_preserved() {
        let mut rng = stream(21, SeedStream::Custom(10));
        let x = init::normal(40, 8, 1.0, &mut rng);
        let cov = crate::stats::covariance(&x);
        let eig = symmetric_eigenvalues(&cov, 1e-9, 128);

        let trace: f32 = (0..8).map(|i| cov.get(i, i)).sum();
        let eig_sum: f32 = eig.iter().sum();
        assert!((trace - eig_sum).abs() < 1e-3 * trace.abs().max(1.0));

        // ‖A‖_F² == Σ λ² for symmetric A.
        let fro2 = cov.sum_squares();
        let eig2: f64 = eig.iter().map(|&l| (l as f64) * (l as f64)).sum();
        assert!((fro2 - eig2).abs() < 1e-3 * fro2.max(1.0));
    }

    #[test]
    fn covariance_eigenvalues_are_nonnegative() {
        let mut rng = stream(22, SeedStream::Custom(11));
        let x = init::normal(100, 6, 2.0, &mut rng);
        let cov = crate::stats::covariance(&x);
        let eig = symmetric_eigenvalues(&cov, 1e-9, 128);
        for l in eig {
            assert!(l > -1e-4, "negative eigenvalue {l}");
        }
    }

    #[test]
    fn rank_one_matrix_has_single_nonzero_eigenvalue() {
        // vv^T with v = [1,2,2] has eigenvalues {0, 0, 9}.
        let v = [1.0_f32, 2.0, 2.0];
        let m = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let eig = symmetric_eigenvalues(&m, 1e-9, 64);
        assert_close(&eig, &[0.0, 0.0, 9.0], 1e-4);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(symmetric_eigenvalues(&Matrix::zeros(0, 0), 1e-9, 8).is_empty());
        assert_eq!(
            symmetric_eigenvalues(&Matrix::filled(1, 1, 4.5), 1e-9, 8),
            vec![4.5]
        );
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = symmetric_eigenvalues(&Matrix::zeros(2, 3), 1e-9, 8);
    }
}
