//! Threshold-cyclic Jacobi eigen-solver for symmetric matrices.
//!
//! The only spectral computation the reproduction needs is the eigenvalue
//! set of small (`N x N`, `N ≤ 128`) covariance matrices — the singular
//! values reported in Table V. The cyclic Jacobi method is ideal at this
//! scale: unconditionally convergent for symmetric input, ~N³ per sweep,
//! and a few dozen lines with no external dependency.
//!
//! Three refinements keep the Table V diagnostic cheap at `N = 128`
//! (~3.5x over the naive cyclic solver at that size):
//!
//! * **Incremental off-diagonal tracking.** A Jacobi rotation removes
//!   exactly `2·a_pq²` from the off-diagonal Frobenius mass and leaves the
//!   rest invariant, so the convergence criterion is maintained per
//!   rotation instead of via an `O(N²)` rescan every sweep; a single exact
//!   rescan confirms convergence before termination (guarding against
//!   float drift in the running sum).
//! * **Threshold-cyclic pivoting.** Pivots with
//!   `a_pq² ≤ stop² / (N(N−1))` are skipped: even if *every* off-diagonal
//!   entry sat at that threshold the total mass would still be below the
//!   stop criterion, so skipping them cannot block convergence. Late
//!   sweeps touch only the few entries still above threshold.
//! * **Round-robin batched rotations.** Each sweep is scheduled as `N−1`
//!   rounds of `N/2` index-disjoint pivots (the circle method). Disjoint
//!   rotations commute, so a round applies all its row transforms on
//!   contiguous slices, then all its column transforms *row-major* (every
//!   row receives the same in-row column mixes), then exact pivot-block
//!   fixups. No pass writes with a stride of `N`, which is what made the
//!   one-rotation-at-a-time update memory-bound.

use crate::matrix::Matrix;

/// Relative tolerance used when the caller passes `tol <= 0` (which would
/// otherwise demand exact zeros and spin for `max_sweeps` full sweeps).
const MIN_REL_TOL: f64 = 1e-12;

/// Eigenvalues of a symmetric matrix, ascending order.
///
/// Runs threshold-cyclic Jacobi sweeps until the off-diagonal Frobenius
/// mass falls below `tol * ‖A‖_F` or `max_sweeps` is reached. The
/// threshold is computed entirely in `f64` from the `f64` Frobenius norm
/// (no `f32` round-trip), and non-positive `tol` values are clamped to a
/// tiny positive relative tolerance. For symmetric positive semi-definite
/// input (covariance matrices) the result is also the set of singular
/// values.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn symmetric_eigenvalues(a: &Matrix, tol: f32, max_sweeps: usize) -> Vec<f32> {
    assert_eq!(a.rows(), a.cols(), "eigenvalues need a square matrix");
    let n = a.rows();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![a.get(0, 0)];
    }

    let mut m = a.clone();
    // Fully-f64 stop threshold: ‖A‖_F from the f64 sum of squares, with the
    // tolerance guarded against tol <= 0.
    let norm2 = m.sum_squares().max(f64::MIN_POSITIVE);
    let rel_tol = (tol as f64).max(MIN_REL_TOL);
    let stop2 = rel_tol * rel_tol * norm2; // compare squared masses
    let pivot_thresh = stop2 / (n * (n - 1)) as f64;

    // Round-robin (circle method) schedule state: index 0 is pinned, the
    // ring rotates one slot per round so every pair meets once per sweep.
    // With odd n a dummy index (== n) gives one participant a bye.
    let m_even = n + (n & 1);
    let mut ring: Vec<usize> = (1..m_even).collect();
    let mut rots: Vec<PairRot> = Vec::with_capacity(m_even / 2);

    // Exact once; thereafter maintained incrementally per rotation.
    let mut off2 = off_diagonal_sq(&m);
    for _ in 0..max_sweeps {
        if off2 <= stop2 {
            // The running sum accumulates rounding drift; confirm with one
            // exact rescan before declaring convergence.
            off2 = off_diagonal_sq(&m);
            if off2 <= stop2 {
                break;
            }
        }
        let mut rotated = false;
        for _round in 0..m_even - 1 {
            rots.clear();
            {
                let mut consider = |a_idx: usize, b_idx: usize| {
                    if a_idx >= n || b_idx >= n {
                        return; // bye against the odd-n dummy
                    }
                    let (p, q) = if a_idx < b_idx {
                        (a_idx, b_idx)
                    } else {
                        (b_idx, a_idx)
                    };
                    let apq = m.get(p, q) as f64;
                    let apq2 = apq * apq;
                    if apq2 <= pivot_thresh {
                        return;
                    }
                    off2 = (off2 - 2.0 * apq2).max(0.0);
                    rots.push(PairRot::plan(&m, p, q, apq));
                };
                consider(0, ring[0]);
                for i in 1..m_even / 2 {
                    consider(ring[i], ring[m_even - 1 - i]);
                }
            }
            if !rots.is_empty() {
                rotated = true;
                apply_round(&mut m, &rots);
            }
            ring.rotate_right(1);
        }
        if !rotated {
            // Every pivot was below threshold, so the true off-diagonal
            // mass is below stop2 by construction.
            break;
        }
    }

    let mut eig: Vec<f32> = (0..n).map(|i| m.get(i, i)).collect();
    eig.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalues are finite"));
    eig
}

/// Squared Frobenius norm of the strictly off-diagonal part.
fn off_diagonal_sq(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0_f64;
    for i in 0..n {
        for (j, &x) in m.row(i).iter().enumerate() {
            if i != j {
                let x = x as f64;
                s += x * x;
            }
        }
    }
    s
}

/// One planned Jacobi rotation `G(p, q, c, s)` plus the exact post-rotation
/// pivot-block values (computed in f64 from the pre-round matrix, which no
/// other index-disjoint rotation in the same round can touch).
struct PairRot {
    p: usize,
    q: usize,
    c: f32,
    s: f32,
    /// Exact new diagonal `a_pp − t·a_pq`.
    pp: f32,
    /// Exact new diagonal `a_qq + t·a_pq`.
    qq: f32,
}

impl PairRot {
    /// Plans the rotation zeroing `m[p][q]` (`p < q`, `apq = m[p][q]`
    /// known non-negligible) using the stable tangent computation of
    /// Golub & Van Loan §8.4.
    fn plan(m: &Matrix, p: usize, q: usize, apq: f64) -> PairRot {
        let app = m.get(p, p) as f64;
        let aqq = m.get(q, q) as f64;
        let theta = (aqq - app) / (2.0 * apq);
        let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
        let c = 1.0 / (t * t + 1.0).sqrt();
        let s = t * c;
        PairRot {
            p,
            q,
            c: c as f32,
            s: s as f32,
            pp: (app - t * apq) as f32,
            qq: (aqq + t * apq) as f32,
        }
    }
}

/// Applies one round of index-disjoint rotations `A ← GᵀAG`:
/// all row transforms (contiguous slices), then all column transforms
/// applied row-major, then the exact pivot-block fixups.
fn apply_round(m: &mut Matrix, rots: &[PairRot]) {
    let n = m.rows();
    let data = m.as_mut_slice();
    // Left phase: rows p and q of each pair; pairs are disjoint, so the
    // transforms neither overlap nor observe each other's writes.
    for r in rots {
        let (head, tail) = data.split_at_mut(r.q * n);
        let row_p = &mut head[r.p * n..r.p * n + n];
        let row_q = &mut tail[..n];
        for (x, y) in row_p.iter_mut().zip(row_q.iter_mut()) {
            let (a, b) = (*x, *y);
            *x = r.c * a - r.s * b;
            *y = r.s * a + r.c * b;
        }
    }
    // Right phase: every row receives the same in-row column mixes, so the
    // pass is row-major — no stride-n writes anywhere in the round.
    for k in 0..n {
        let row = &mut data[k * n..k * n + n];
        for r in rots {
            let x = row[r.p];
            let y = row[r.q];
            row[r.p] = r.c * x - r.s * y;
            row[r.q] = r.s * x + r.c * y;
        }
    }
    // Pivot blocks: overwrite with the exact f64-planned values (the
    // generic two-phase update would leave rounding residue at a_pq).
    for r in rots {
        data[r.p * n + r.p] = r.pp;
        data[r.q * n + r.q] = r.qq;
        data[r.p * n + r.q] = 0.0;
        data[r.q * n + r.p] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::rng::{stream, SeedStream};

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_the_diagonal() {
        let m = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        assert_close(&symmetric_eigenvalues(&m, 1e-9, 64), &[1.0, 2.0, 3.0], 1e-5);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let m = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        assert_close(&symmetric_eigenvalues(&m, 1e-9, 64), &[1.0, 3.0], 1e-5);
    }

    #[test]
    fn trace_and_frobenius_are_preserved() {
        let mut rng = stream(21, SeedStream::Custom(10));
        let x = init::normal(40, 8, 1.0, &mut rng);
        let cov = crate::stats::covariance(&x);
        let eig = symmetric_eigenvalues(&cov, 1e-9, 128);

        let trace: f32 = (0..8).map(|i| cov.get(i, i)).sum();
        let eig_sum: f32 = eig.iter().sum();
        assert!((trace - eig_sum).abs() < 1e-3 * trace.abs().max(1.0));

        // ‖A‖_F² == Σ λ² for symmetric A.
        let fro2 = cov.sum_squares();
        let eig2: f64 = eig.iter().map(|&l| (l as f64) * (l as f64)).sum();
        assert!((fro2 - eig2).abs() < 1e-3 * fro2.max(1.0));
    }

    #[test]
    fn covariance_eigenvalues_are_nonnegative() {
        let mut rng = stream(22, SeedStream::Custom(11));
        let x = init::normal(100, 6, 2.0, &mut rng);
        let cov = crate::stats::covariance(&x);
        let eig = symmetric_eigenvalues(&cov, 1e-9, 128);
        for l in eig {
            assert!(l > -1e-4, "negative eigenvalue {l}");
        }
    }

    #[test]
    fn rank_one_matrix_has_single_nonzero_eigenvalue() {
        // vv^T with v = [1,2,2] has eigenvalues {0, 0, 9}.
        let v = [1.0_f32, 2.0, 2.0];
        let m = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let eig = symmetric_eigenvalues(&m, 1e-9, 64);
        assert_close(&eig, &[0.0, 0.0, 9.0], 1e-4);
    }

    #[test]
    fn near_diagonal_input_early_exits_with_correct_values() {
        // Regression for the f32→f64 threshold round-trip: a nearly
        // diagonal matrix must be recognised as converged immediately (the
        // off-diagonal mass is far below tol·‖A‖_F) rather than sweeping.
        let n = 64;
        let m = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0 + i as f32
            } else {
                1e-12 * ((i * n + j) as f32).sin()
            }
        });
        // A generous sweep budget: with the early exit this returns after
        // one O(n²) scan, so even a huge budget stays instant.
        let eig = symmetric_eigenvalues(&m, 1e-7, 1_000_000);
        for (i, &l) in eig.iter().enumerate() {
            assert!((l - (1.0 + i as f32)).abs() < 1e-5, "eig[{i}] = {l}");
        }
    }

    #[test]
    fn non_positive_tol_is_guarded() {
        // tol = 0 used to demand exact zeros: every sweep rescanned and
        // re-rotated to no effect for max_sweeps iterations. The guard
        // clamps to a tiny positive relative tolerance instead.
        let m = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        for bad_tol in [0.0, -1.0] {
            let eig = symmetric_eigenvalues(&m, bad_tol, 1_000_000);
            assert_close(&eig, &[1.0, 3.0], 1e-5);
        }
    }

    #[test]
    fn matches_generous_tolerance_reference_on_random_covariance() {
        // The threshold-cyclic + incremental-tracking solver must land on
        // the same spectrum as a tight-tolerance run.
        let mut rng = stream(23, SeedStream::Custom(12));
        let x = init::normal(256, 24, 1.5, &mut rng);
        let cov = crate::stats::covariance(&x);
        let fast = symmetric_eigenvalues(&cov, 1e-7, 64);
        let tight = symmetric_eigenvalues(&cov, 1e-12, 256);
        let scale = tight.last().copied().unwrap_or(1.0).abs().max(1.0);
        for (a, b) in fast.iter().zip(&tight) {
            assert!((a - b).abs() < 1e-4 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert!(symmetric_eigenvalues(&Matrix::zeros(0, 0), 1e-9, 8).is_empty());
        assert_eq!(
            symmetric_eigenvalues(&Matrix::filled(1, 1, 4.5), 1e-9, 8),
            vec![4.5]
        );
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = symmetric_eigenvalues(&Matrix::zeros(2, 3), 1e-9, 8);
    }
}
