//! Parameter initialisers.
//!
//! The paper inherits the usual deep-recsys defaults: Glorot/Xavier for FFN
//! weights and small-variance normal draws for embedding tables. The
//! heterogeneous aggregation (Eq. 10) additionally requires that tier
//! tables are initialised *from the same point* on their shared column
//! prefixes — [`embedding_normal`] guarantees this by construction because
//! the generator fills row-major and each tier table is a prefix slice of
//! the widest one.

use crate::matrix::Matrix;
use crate::rng::Rng;

/// Glorot/Xavier-uniform initialised matrix: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// Normal(0, std) initialised matrix, the convention for embedding tables.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| sample_normal(rng) * std)
}

/// Normal(0, std) initialised flat vector (for biases / user embeddings).
pub fn normal_vec(len: usize, std: f32, rng: &mut impl Rng) -> Vec<f32> {
    (0..len).map(|_| sample_normal(rng) * std).collect()
}

/// Embedding-table initialiser: Normal(0, `1/sqrt(dim)`), the scale that
/// keeps dot products O(1) regardless of dimension — important when tiers
/// of very different widths (8 vs 128) must coexist.
pub fn embedding_normal(rows: usize, dim: usize, rng: &mut impl Rng) -> Matrix {
    normal(rows, dim, 1.0 / (dim.max(1) as f32).sqrt(), rng)
}

/// Samples a standard normal from the workspace RNG's Box–Muller draw.
fn sample_normal(rng: &mut impl Rng) -> f32 {
    rng.standard_normal_f32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream, SeedStream};

    #[test]
    fn glorot_respects_bound() {
        let mut rng = stream(1, SeedStream::ParamInit);
        let m = glorot_uniform(64, 32, &mut rng);
        let a = (6.0 / 96.0_f32).sqrt();
        assert!(m.as_slice().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = stream(2, SeedStream::ParamInit);
        let m = normal(200, 50, 0.5, &mut rng);
        let n = m.len() as f64;
        let mean: f64 = m.as_slice().iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn embedding_scale_tracks_dimension() {
        let mut rng = stream(3, SeedStream::ParamInit);
        let wide = embedding_normal(500, 64, &mut rng);
        let n = wide.len() as f64;
        let var: f64 = wide
            .as_slice()
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            / n;
        let expected = 1.0 / 64.0;
        assert!(
            (var - expected).abs() < expected * 0.15,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn initialisation_is_deterministic_per_stream() {
        let mut a = stream(9, SeedStream::ParamInit);
        let mut b = stream(9, SeedStream::ParamInit);
        assert_eq!(glorot_uniform(4, 4, &mut a), glorot_uniform(4, 4, &mut b));
    }

    #[test]
    fn normal_vec_length() {
        let mut rng = stream(4, SeedStream::UserInit);
        assert_eq!(normal_vec(17, 0.1, &mut rng).len(), 17);
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = stream(5, SeedStream::ParamInit);
        let m = normal(100, 10, 1.0, &mut rng);
        assert!(m.all_finite());
    }
}
