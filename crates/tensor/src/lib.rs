//! # hf-tensor
//!
//! Dense `f32` linear-algebra substrate for the HeteFedRec reproduction.
//!
//! Every numerical primitive the federated recommender stack needs lives
//! here so that the higher layers (models, aggregation, distillation) stay
//! free of ad-hoc math:
//!
//! * [`Matrix`] — row-major dense matrix with the handful of BLAS-like
//!   operations the models require (matmul, transpose, axpy, prefix-column
//!   views for heterogeneous embeddings).
//! * [`rng`] — deterministic, purpose-keyed random streams so every
//!   experiment is bit-reproducible from a single seed.
//! * [`init`] — Glorot/Xavier and scaled-normal initialisers.
//! * [`ops`] — scalar activations and losses (sigmoid, BCE-with-logits,
//!   ReLU) plus a few vector helpers.
//! * [`stats`] — column statistics, covariance and correlation matrices
//!   (the inputs to the paper's dimensional-decorrelation regulariser,
//!   Eq. 13, and the Table V diagnostic).
//! * [`eigen`] — a cyclic Jacobi eigen-solver for symmetric matrices, used
//!   to obtain the singular values of embedding covariance matrices.
//! * [`sim`] — pairwise cosine-similarity matrices and their analytic
//!   gradient, the core of relation-based ensemble self-distillation
//!   (Eq. 16–17).
//! * [`adam`] — Adam optimiser state for dense parameter vectors and for
//!   sparse row-subsets of embedding tables.
//! * [`ser`] — minimal JSON emission ([`ser::ToJson`]) so experiment
//!   results snapshot without a serde dependency (the build must succeed
//!   with an empty cargo registry).
//!
//! The crate is intentionally framework-free: the repro band for this paper
//! flags Rust ML frameworks as immature for distillation workflows, so all
//! gradients in the workspace are written (and finite-difference tested) by
//! hand on top of these primitives.

#![warn(missing_docs)]

pub mod adam;
pub mod eigen;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod ser;
pub mod sim;
pub mod stats;

pub use adam::{Adam, AdamConfig, SparseRowAdam};
pub use matrix::Matrix;
pub use rng::{stream, SeedStream};
pub use ser::ToJson;
