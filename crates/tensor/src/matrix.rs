//! Row-major dense `f32` matrix.
//!
//! The recommender models only need a small set of operations, but two of
//! them are unusual and drive the design:
//!
//! * **Prefix-column views.** Heterogeneous tiers operate on the *leading*
//!   `n` columns of a wider embedding table (the paper's `V[:Ns]` slices,
//!   Eq. 10/11). Rows are contiguous, so a prefix view of a row is just a
//!   shorter slice — every row accessor therefore takes an optional width.
//! * **Sparse row updates.** A federated client touches only the item rows
//!   in its local batch, so in-place row `axpy` must be cheap and
//!   allocation-free.

/// Row-major dense matrix of `f32`.
///
/// Invariant: `data.len() == rows * cols` at all times.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Sets a single element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Full row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Full row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Leading `width` entries of row `r` — the `[:width]` prefix view the
    /// heterogeneous tiers operate on.
    ///
    /// # Panics
    /// Panics if `width > cols`.
    #[inline]
    pub fn row_prefix(&self, r: usize, width: usize) -> &[f32] {
        assert!(
            width <= self.cols,
            "prefix width {width} exceeds {} columns",
            self.cols
        );
        let start = r * self.cols;
        &self.data[start..start + width]
    }

    /// Mutable leading `width` entries of row `r`.
    #[inline]
    pub fn row_prefix_mut(&mut self, r: usize, width: usize) -> &mut [f32] {
        assert!(
            width <= self.cols,
            "prefix width {width} exceeds {} columns",
            self.cols
        );
        let start = r * self.cols;
        &mut self.data[start..start + width]
    }

    /// Copies the leading `width` columns into a new `rows x width` matrix
    /// (materialises the paper's `V[:N]` sub-table).
    pub fn prefix_columns(&self, width: usize) -> Matrix {
        assert!(
            width <= self.cols,
            "prefix width {width} exceeds {} columns",
            self.cols
        );
        let mut out = Vec::with_capacity(self.rows * width);
        for r in 0..self.rows {
            out.extend_from_slice(self.row_prefix(r, width));
        }
        Matrix::from_vec(self.rows, width, out)
    }

    /// Copies a subset of rows (in the given order) into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Vec::with_capacity(indices.len() * self.cols);
        for &r in indices {
            out.extend_from_slice(self.row(r));
        }
        Matrix::from_vec(indices.len(), self.cols, out)
    }

    /// Copies a subset of rows restricted to the leading `width` columns.
    pub fn select_rows_prefix(&self, indices: &[usize], width: usize) -> Matrix {
        let mut out = Vec::with_capacity(indices.len() * width);
        for &r in indices {
            out.extend_from_slice(self.row_prefix(r, width));
        }
        Matrix::from_vec(indices.len(), width, out)
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// `self += alpha * other` (same shape).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// `self[r][..len] += alpha * v` for a single row prefix.
    #[inline]
    pub fn row_axpy(&mut self, r: usize, alpha: f32, v: &[f32]) {
        let row = self.row_prefix_mut(r, v.len());
        for (a, b) in row.iter_mut().zip(v.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Matrix product `self * other`.
    ///
    /// Blocked kernel tiled over i/k/j: `MR x NR` output tiles are
    /// accumulated in an f32 register panel by an outer-product
    /// micro-kernel, so each loaded slice of `other` feeds `MR` output
    /// rows and the k-loop issues `MR` independent fma chains with no
    /// stores. Every `a_ik * b_kj` product is accumulated — there is
    /// deliberately no zero-skip, so non-finite values (NaN/Inf) propagate
    /// into the product exactly as IEEE 754 dictates. Each output element
    /// sums its `k` terms in ascending order, keeping results bit-identical
    /// to a naive ikj loop and independent of the tiling.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_rows(other, 0, self.rows)
    }

    /// Product of the row slice `self[row_start..row_end]` with `other`,
    /// as a `(row_end - row_start) x other.cols` matrix.
    ///
    /// This is the unit of work a threaded driver fans out (see
    /// `hf_fedsim::linalg::par_matmul`): concatenating the blocks for a
    /// partition of `0..rows` reproduces [`Matrix::matmul`] bit for bit,
    /// because each output row is computed identically in isolation.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows` or the row range is out of
    /// bounds or reversed.
    pub fn matmul_rows(&self, other: &Matrix, row_start: usize, row_end: usize) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert!(
            row_start <= row_end && row_end <= self.rows,
            "row range {row_start}..{row_end} out of bounds for {} rows",
            self.rows
        );
        // Micro-kernel tile: MR rows of `self` against NR columns of
        // `other`, with the MR x NR f32 accumulator panel living in
        // registers across the whole k loop (the only stores happen at
        // write-back). One loaded NR-wide slice of `other` feeds MR fma
        // chains, cutting B traffic MR-fold versus the row-at-a-time loop.
        const MR: usize = 4;
        const NR: usize = 16;
        let (kd, n) = (self.cols, other.cols);
        let m = row_end - row_start;
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 || kd == 0 {
            return out;
        }
        let a = &self.data;
        let b = &other.data;
        let full_i = m - m % MR;
        let full_j = n - n % NR;
        for ii in (0..full_i).step_by(MR) {
            let a_rows: [&[f32]; MR] = std::array::from_fn(|r| {
                let start = (row_start + ii + r) * kd;
                &a[start..start + kd]
            });
            for jj in (0..full_j).step_by(NR) {
                let mut acc = [[0.0f32; NR]; MR];
                for k in 0..kd {
                    // Fixed-size view so the inner loops fully unroll.
                    let b_tile: &[f32; NR] =
                        b[k * n + jj..k * n + jj + NR].try_into().expect("NR slice");
                    for r in 0..MR {
                        let a_rk = a_rows[r][k];
                        for (o, &b_kj) in acc[r].iter_mut().zip(b_tile) {
                            *o += a_rk * b_kj;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    out.data[(ii + r) * n + jj..][..NR].copy_from_slice(acc_row);
                }
            }
            if full_j < n {
                // Column tail: same panel accumulation over a short tile.
                let nb = n - full_j;
                let mut acc = [[0.0f32; NR]; MR];
                for k in 0..kd {
                    let b_tile = &b[k * n + full_j..][..nb];
                    for r in 0..MR {
                        let a_rk = a_rows[r][k];
                        for (o, &b_kj) in acc[r][..nb].iter_mut().zip(b_tile) {
                            *o += a_rk * b_kj;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    out.data[(ii + r) * n + full_j..][..nb].copy_from_slice(&acc_row[..nb]);
                }
            }
        }
        // Row tail (m % MR rows): plain ikj axpy, still skip-free and in
        // ascending k order, so elements match the micro-kernel bitwise.
        for i in full_i..m {
            let a_row = &a[(row_start + i) * kd..][..kd];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a_ik) in a_row.iter().enumerate() {
                let b_row = &b[k * n..(k + 1) * n];
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// `self^T * self` without materialising the transpose — the Gram matrix
    /// used by covariance/correlation computations.
    ///
    /// Accumulates rank-1 updates on the upper triangle only (the result is
    /// symmetric by construction) and mirrors at the end, halving the work
    /// of a full accumulation. Like [`Matrix::matmul`] there is no
    /// zero-skip, so NaN/Inf in any row poisons the affected entries.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for (i, &xi) in row.iter().enumerate() {
                let out_row = &mut out.data[i * n + i..(i + 1) * n];
                for (o, &xj) in out_row.iter_mut().zip(&row[i..]) {
                    *o += xi * xj;
                }
            }
        }
        for i in 0..n {
            for j in i + 1..n {
                out.data[j * n + i] = out.data[i * n + j];
            }
        }
        out
    }

    /// `self * self^T` — the row-Gram matrix (`rows x rows`) of pairwise
    /// row dot products, the kernel behind pairwise-similarity matrices.
    ///
    /// Computes the upper triangle of contiguous-slice dot products and
    /// mirrors it; no zero-skip, so non-finite rows poison their entries.
    pub fn row_gram(&self) -> Matrix {
        let m = self.rows;
        let mut out = Matrix::zeros(m, m);
        for i in 0..m {
            let ri = self.row(i);
            for j in i..m {
                let mut acc = 0.0f32;
                for (&x, &y) in ri.iter().zip(self.row(j)) {
                    acc += x * y;
                }
                out.data[i * m + j] = acc;
                out.data[j * m + i] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm `sqrt(sum of squares)`.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|x| (*x as f64) * (*x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Sum of squared elements (squared Frobenius norm) in f64 for accuracy.
    pub fn sum_squares(&self) -> f64 {
        self.data.iter().map(|x| (*x as f64) * (*x as f64)).sum()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, x| m.max(x.abs()))
    }

    /// `true` if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Elementwise sum with another matrix, producing a new matrix.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.axpy(1.0, other);
        out
    }

    /// Elementwise difference `self - other`, producing a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.axpy(-1.0, other);
        out
    }
}

impl crate::ser::ToJson for Matrix {
    fn write_json(&self, out: &mut String) {
        crate::ser::obj(out, |o| {
            o.field("rows", &self.rows)
                .field("cols", &self.cols)
                .field("data", &self.data);
        });
    }
}

impl Matrix {
    /// Restores a checkpointed matrix (shape-checked).
    pub fn from_json(v: &crate::ser::JsonValue<'_>) -> Result<Self, crate::ser::JsonError> {
        let rows = v.get("rows")?.as_usize()?;
        let cols = v.get("cols")?.as_usize()?;
        let data = v.get("data")?.as_f32_vec()?;
        if data.len() != rows * cols {
            return Err(crate::ser::JsonError::msg(format!(
                "matrix data length {} does not match shape {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_indexing_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "flat buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_prefix_views() {
        let m = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(m.row_prefix(1, 2), &[4.0, 5.0]);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "prefix width")]
    fn row_prefix_rejects_overwide() {
        let m = Matrix::zeros(2, 3);
        let _ = m.row_prefix(0, 4);
    }

    #[test]
    fn prefix_columns_materialises_leading_slice() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let p = m.prefix_columns(2);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 2);
        assert_eq!(p.as_slice(), &[0.0, 1.0, 4.0, 5.0, 8.0, 9.0]);
    }

    #[test]
    fn select_rows_in_order() {
        let m = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.as_slice(), &[6.0, 7.0, 2.0, 3.0]);
    }

    #[test]
    fn select_rows_prefix_combines_both() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let s = m.select_rows_prefix(&[2, 0], 2);
        assert_eq!(s.as_slice(), &[6.0, 7.0, 0.0, 1.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f32 + 0.5);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn gram_equals_transpose_matmul() {
        let a = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f32).sin());
        let g = a.gram();
        let g2 = a.transpose().matmul(&a);
        for (x, y) in g.as_slice().iter().zip(g2.as_slice()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_rows_blocks_concatenate_to_full_product() {
        let a = Matrix::from_fn(37, 23, |r, c| ((r * 23 + c) as f32).sin());
        let b = Matrix::from_fn(23, 41, |r, c| ((r * 41 + c) as f32).cos());
        let full = a.matmul(&b);
        for split in [0, 1, 17, 37] {
            let top = a.matmul_rows(&b, 0, split);
            let bottom = a.matmul_rows(&b, split, 37);
            let mut joined = top.into_vec();
            joined.extend_from_slice(bottom.as_slice());
            // Bit-identical, not just close: row blocks must reproduce the
            // full kernel exactly so threaded fan-out stays deterministic.
            let joined: Vec<u32> = joined.iter().map(|x| x.to_bits()).collect();
            let expect: Vec<u32> = full.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(joined, expect, "split {split}");
        }
    }

    #[test]
    fn matmul_handles_non_tile_aligned_shapes() {
        // Shapes straddling the MR x NR (4 x 16) micro-kernel tile exercise
        // every edge branch; verify against a plain triple loop.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (33, 65, 66),
            (64, 64, 64),
            (5, 130, 3),
        ] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.37).sin());
            let b = Matrix::from_fn(k, n, |r, c| ((r * n + c) as f32 * 0.61).cos());
            let got = a.matmul(&b);
            for i in 0..m {
                for j in 0..n {
                    let mut want = 0.0f32;
                    for kk in 0..k {
                        want += a.get(i, kk) * b.get(kk, j);
                    }
                    assert_eq!(
                        got.get(i, j).to_bits(),
                        want.to_bits(),
                        "({i},{j}) {m}x{k}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_propagates_nan_despite_zero_operand() {
        // Regression: the old kernel skipped a_ik == 0.0, so 0 * NaN was
        // silently dropped instead of poisoning the output (IEEE 754 says
        // 0 * NaN = NaN). A diverged operand must be visible in the result.
        let mut a = Matrix::zeros(2, 3);
        a.set(0, 0, 1.0); // row 0 multiplies b row 0 only (rest are zeros)
        let mut b = Matrix::filled(3, 2, 1.0);
        b.set(2, 0, f32::NAN); // reached only through a's zero entries
        let c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0*NaN must poison the row");
        assert!(c.get(1, 0).is_nan(), "all-zero row still sees 0*NaN");
        assert_eq!(c.get(1, 1), 0.0, "finite column stays finite");

        // NaN on the right reached only through a zero in the left operand.
        let a2 = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let mut b2 = Matrix::identity(2);
        b2.set(1, 1, f32::NAN);
        let c2 = a2.matmul(&b2);
        assert!(c2.get(0, 1).is_nan(), "0*NaN in column must propagate");
    }

    #[test]
    fn gram_propagates_nan_rows() {
        let mut x = Matrix::filled(4, 3, 0.0);
        x.set(2, 1, f32::NAN);
        let g = x.gram();
        for j in 0..3 {
            assert!(g.get(1, j).is_nan(), "gram row 1 col {j} must be NaN");
            assert!(g.get(j, 1).is_nan(), "gram col 1 row {j} must be NaN");
        }
    }

    #[test]
    fn row_gram_matches_matmul_with_transpose() {
        let a = Matrix::from_fn(9, 5, |r, c| ((r * 5 + c) as f32).sin());
        let g = a.row_gram();
        let g2 = a.matmul(&a.transpose());
        assert_eq!(g.rows(), 9);
        for (x, y) in g.as_slice().iter().zip(g2.as_slice()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        // Symmetry is exact by construction.
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(g.get(i, j).to_bits(), g.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_fn(2, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
        a.scale(0.25);
        assert_eq!(a.as_slice(), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn row_axpy_touches_only_target_prefix() {
        let mut a = Matrix::zeros(2, 3);
        a.row_axpy(1, 2.0, &[1.0, 2.0]);
        assert_eq!(a.as_slice(), &[0.0, 0.0, 0.0, 2.0, 4.0, 0.0]);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + 2 * c) as f32);
        let b = Matrix::filled(2, 2, 1.5);
        let roundtrip = a.add(&b).sub(&b);
        for (x, y) in roundtrip.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn max_abs_and_finiteness() {
        let a = Matrix::from_vec(1, 3, vec![-2.0, 1.0, 0.5]);
        assert_eq!(a.max_abs(), 2.0);
        assert!(a.all_finite());
        let b = Matrix::from_vec(1, 1, vec![f32::NAN]);
        assert!(!b.all_finite());
    }

    #[test]
    fn json_roundtrip_is_bit_exact() {
        use crate::ser::{parse_json, ToJson};
        let m = Matrix::from_fn(3, 2, |r, c| ((r * 7 + c) as f32).sin() / 3.0);
        let back = Matrix::from_json(&parse_json(&m.to_json()).unwrap()).unwrap();
        assert_eq!(back.rows(), 3);
        assert_eq!(back.cols(), 2);
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Shape mismatch is rejected.
        let bad = parse_json(r#"{"rows":2,"cols":2,"data":[1,2,3]}"#).unwrap();
        assert!(Matrix::from_json(&bad).is_err());
    }
}
