//! Scalar activations, losses, and small vector helpers.
//!
//! The recommendation loss throughout the paper is binary cross-entropy on
//! implicit feedback (Eq. 2). We keep it in logit space
//! ([`bce_with_logits`]) for numerical stability; its gradient with respect
//! to the logit is the famously tidy `sigmoid(z) - y`.

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy evaluated in logit space:
/// `max(z,0) - z*y + ln(1 + exp(-|z|))`.
///
/// Mathematically identical to `-y ln σ(z) - (1-y) ln(1-σ(z))` (Eq. 2 of
/// the paper) but immune to `ln(0)`.
#[inline]
pub fn bce_with_logits(logit: f32, target: f32) -> f32 {
    logit.max(0.0) - logit * target + (1.0 + (-logit.abs()).exp()).ln()
}

/// Gradient of [`bce_with_logits`] with respect to the logit: `σ(z) - y`.
#[inline]
pub fn bce_with_logits_grad(logit: f32, target: f32) -> f32 {
    sigmoid(logit) - target
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU evaluated at the *pre-activation* value.
#[inline]
pub fn relu_grad(pre_activation: f32) -> f32 {
    if pre_activation > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics (debug) if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn l2_norm(v: &[f32]) -> f32 {
    dot(v, v).sqrt()
}

/// `out += alpha * v` elementwise.
#[inline]
pub fn axpy_slice(out: &mut [f32], alpha: f32, v: &[f32]) {
    debug_assert_eq!(out.len(), v.len());
    for (o, x) in out.iter_mut().zip(v.iter()) {
        *o += alpha * x;
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(v: &[f32]) -> f32 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64) as f32
}

/// Population variance of a slice (0 for len < 2 inputs).
pub fn variance(v: &[f32]) -> f32 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v) as f64;
    (v.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / v.len() as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        for z in [-50.0, -3.0, -0.1, 0.2, 4.0, 80.0] {
            let s = sigmoid(z);
            assert!(s.is_finite() && (0.0..=1.0).contains(&s));
            assert!((sigmoid(-z) - (1.0 - s)).abs() < 1e-6);
        }
    }

    #[test]
    fn bce_matches_naive_formula_in_safe_range() {
        for &(z, y) in &[(0.3_f32, 1.0_f32), (-0.7, 0.0), (2.0, 1.0), (-1.5, 1.0)] {
            let p = sigmoid(z);
            let naive = -y * p.ln() - (1.0 - y) * (1.0 - p).ln();
            assert!((bce_with_logits(z, y) - naive).abs() < 1e-5);
        }
    }

    #[test]
    fn bce_is_stable_at_extremes() {
        assert!(bce_with_logits(100.0, 0.0).is_finite());
        assert!(bce_with_logits(-100.0, 1.0).is_finite());
        // Correct, confident predictions have ~zero loss.
        assert!(bce_with_logits(100.0, 1.0) < 1e-6);
        assert!(bce_with_logits(-100.0, 0.0) < 1e-6);
    }

    #[test]
    fn bce_grad_is_sigmoid_minus_target() {
        let z = 0.83;
        let eps = 1e-3;
        for y in [0.0, 1.0] {
            let fd = (bce_with_logits(z + eps, y) - bce_with_logits(z - eps, y)) / (2.0 * eps);
            assert!((bce_with_logits_grad(z, y) - fd).abs() < 1e-3, "y={y}");
        }
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_grad(-0.5), 0.0);
        assert_eq!(relu_grad(0.5), 1.0);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_slice_accumulates() {
        let mut out = [1.0, 1.0];
        axpy_slice(&mut out, 2.0, &[1.0, 3.0]);
        assert_eq!(out, [3.0, 7.0]);
    }

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-6);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-6);
    }
}
