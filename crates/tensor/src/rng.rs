//! Deterministic, purpose-keyed random streams — std-only.
//!
//! Federated experiments have many independent sources of randomness
//! (parameter init, client-queue shuffles, negative sampling, KD item
//! sampling, ...). Deriving each from a single experiment seed *and* a
//! stable purpose key means adding a new consumer never perturbs the draws
//! of existing ones — a property the reproducibility tests rely on.
//!
//! The workspace must build with an empty cargo registry, so this module
//! carries its own generator instead of depending on the `rand` crate:
//! [`StdRng`] is xoshiro256++ (Blackman & Vigna) seeded through SplitMix64,
//! and [`Rng`] exposes the small API surface the workspace actually uses
//! (`gen`, `gen_range`, `gen_bool`, plus Gaussian/Gumbel draws).

use std::ops::{Range, RangeInclusive};

/// Stable stream identifiers for every random consumer in the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeedStream {
    /// Public parameter initialisation (item embeddings, FFN weights).
    ParamInit,
    /// Per-client private user-embedding initialisation.
    UserInit,
    /// Synthetic dataset generation.
    Dataset,
    /// Train/validation/test splitting.
    Split,
    /// Negative sampling during local training.
    Negatives,
    /// Client queue shuffling at the start of each epoch.
    ClientQueue,
    /// Knowledge-distillation item subset sampling.
    Distill,
    /// Evaluation-time tie-breaking / sampling.
    Eval,
    /// Failure injection (client drop simulation).
    Faults,
    /// Per-dispatch client latency draws (event-driven simulation).
    Latency,
    /// Client availability (churn) draws.
    Churn,
    /// Secure-aggregation key-agreement secrets (per client, per session).
    SecAggSecret,
    /// Secure-aggregation pairwise mask expansion for one round. The
    /// round number is folded into the key so the same pair secret
    /// yields an unrelated mask stream every round.
    SecAggMask {
        /// Round the mask stream belongs to.
        round: u64,
    },
    /// Free-form stream for tests and tools.
    Custom(u64),
}

impl SeedStream {
    fn key(self) -> u64 {
        match self {
            SeedStream::ParamInit => 0x5045_5249,
            SeedStream::UserInit => 0x5553_4552,
            SeedStream::Dataset => 0x4441_5441,
            SeedStream::Split => 0x5350_4c54,
            SeedStream::Negatives => 0x4e45_4753,
            SeedStream::ClientQueue => 0x5155_4555,
            SeedStream::Distill => 0x4449_5354,
            SeedStream::Eval => 0x4556_414c,
            SeedStream::Faults => 0x4641_554c,
            SeedStream::Latency => 0x4c41_5459,
            SeedStream::Churn => 0x4348_524e,
            SeedStream::SecAggSecret => 0x5341_5345,
            SeedStream::SecAggMask { round } => 0x5341_4d4b ^ split_mix64(round),
            SeedStream::Custom(k) => 0xc000_0000_0000_0000 ^ k,
        }
    }
}

/// The uniform random source: everything else is derived from `next_u64`.
///
/// Implemented for [`StdRng`] and for `&mut R` so `&mut impl Rng` call
/// sites compose. The generic helpers (`gen`, `gen_range`, ...) are
/// provided methods, so implementors only supply the raw stream.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw of a primitive: `u32`/`u64`/`usize` over their full
    /// range, `f32`/`f64` in `[0, 1)`, `bool` fair.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform draw from a range (`a..b` or `a..=b` for integers,
    /// `a..b` for floats). Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Standard normal N(0, 1) draw via Box–Muller.
    fn standard_normal(&mut self) -> f64
    where
        Self: Sized,
    {
        let u1: f64 = 1.0 - self.gen::<f64>(); // (0, 1] so ln() is finite
        let u2: f64 = self.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Standard normal N(0, 1) draw as `f32`.
    fn standard_normal_f32(&mut self) -> f32
    where
        Self: Sized,
    {
        self.standard_normal() as f32
    }

    /// Standard Gumbel(0, 1) draw (for top-k sampling tricks).
    fn gumbel01(&mut self) -> f32
    where
        Self: Sized,
    {
        let u: f32 = self.gen::<f32>().max(1e-9);
        -(-u.ln()).ln()
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Primitive types drawable uniformly from an [`Rng`]. Floats land in
/// `[0, 1)` with 24 (`f32`) / 53 (`f64`) bits of precision.
pub trait FromRng {
    /// Draws one value from the generator.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges an [`Rng`] can sample uniformly.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one value; panics if the range is empty.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free-enough uniform integer in `[0, n)` (Lemire-style
/// widening multiply keeps modulo bias below 2^-64 relative).
fn uniform_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                // wrapping arithmetic: the span is correct modulo 2^64 even
                // for signed ranges wider than the signed max.
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impls!(u32, u64, usize, i64);

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let v = self.start + rng.gen::<f32>() * (self.end - self.start);
        // Rounding can land exactly on the exclusive bound for narrow
        // ranges; keep the half-open contract.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let v = self.start + rng.gen::<f64>() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// xoshiro256++ generator — the workspace's sole uniform source.
///
/// Small (4×u64), fast, and passes BigCrush; named `StdRng` so call sites
/// read the same as they would against the `rand` crate.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Expands a 64-bit seed into the full 256-bit state via SplitMix64
    /// (the seeding procedure recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = split_mix64(x);
        }
        // All-zero state is the one invalid xoshiro state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }

    /// The full 256-bit generator state (for checkpointing).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from [`StdRng::state`] output, resuming the
    /// stream exactly where it was captured.
    ///
    /// # Panics
    /// Panics on the all-zero state (invalid for xoshiro).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "all-zero xoshiro state is invalid");
        Self { s }
    }
}

impl crate::ser::ToJson for StdRng {
    fn write_json(&self, out: &mut String) {
        self.s.write_json(out);
    }
}

impl StdRng {
    /// Restores a checkpointed generator from its JSON state.
    pub fn from_json(v: &crate::ser::JsonValue<'_>) -> Result<Self, crate::ser::JsonError> {
        let s = v.as_u64_vec()?;
        let s: [u64; 4] = s
            .try_into()
            .map_err(|_| crate::ser::JsonError::msg("rng state must have 4 words"))?;
        if s == [0, 0, 0, 0] {
            return Err(crate::ser::JsonError::msg("all-zero rng state"));
        }
        Ok(Self::from_state(s))
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Derives a deterministic [`StdRng`] from `(experiment seed, stream)`.
///
/// Uses SplitMix64 over the combined key so nearby seeds produce unrelated
/// streams.
pub fn stream(seed: u64, which: SeedStream) -> StdRng {
    let mixed = split_mix64(seed ^ split_mix64(which.key()));
    StdRng::seed_from_u64(mixed)
}

/// Derives a sub-stream keyed by an extra index (e.g. a client id), so that
/// per-client randomness is independent of iteration order.
pub fn substream(seed: u64, which: SeedStream, index: u64) -> StdRng {
    let mixed =
        split_mix64(seed ^ split_mix64(which.key()) ^ split_mix64(index.wrapping_add(0x9e37)));
    StdRng::seed_from_u64(mixed)
}

/// SplitMix64 finaliser — a cheap, well-distributed 64-bit mixer.
fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fisher–Yates shuffle driven by the supplied RNG (extracted so protocol
/// code and tests share one implementation).
pub fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draws<T: FromRng>(seed: u64, which: SeedStream, n: usize) -> Vec<T> {
        let mut rng = stream(seed, which);
        (0..n).map(|_| rng.gen::<T>()).collect()
    }

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let a: Vec<u32> = draws(7, SeedStream::Dataset, 8);
        let b: Vec<u32> = draws(7, SeedStream::Dataset, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_decorrelate() {
        let a: u64 = stream(7, SeedStream::Dataset).gen();
        let b: u64 = stream(7, SeedStream::Split).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a: u64 = stream(1, SeedStream::ParamInit).gen();
        let b: u64 = stream(2, SeedStream::ParamInit).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn substreams_differ_per_index() {
        let a: u64 = substream(7, SeedStream::UserInit, 0).gen();
        let b: u64 = substream(7, SeedStream::UserInit, 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn secagg_streams_decorrelate_from_each_other_and_per_round() {
        let secret: u64 = stream(7, SeedStream::SecAggSecret).gen();
        let mask0: u64 = stream(7, SeedStream::SecAggMask { round: 0 }).gen();
        let mask1: u64 = stream(7, SeedStream::SecAggMask { round: 1 }).gen();
        assert_ne!(secret, mask0);
        assert_ne!(mask0, mask1);
        // And neither collides with an established stream.
        let faults: u64 = stream(7, SeedStream::Faults).gen();
        assert_ne!(secret, faults);
        assert_ne!(mask0, faults);
    }

    #[test]
    fn custom_streams_are_keyed() {
        let a: u64 = stream(7, SeedStream::Custom(1)).gen();
        let b: u64 = stream(7, SeedStream::Custom(2)).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = stream(9, SeedStream::Custom(0));
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "f32 {x}");
            assert!((0.0..1.0).contains(&y), "f64 {y}");
        }
    }

    #[test]
    fn float_draws_are_roughly_uniform() {
        let mut rng = stream(10, SeedStream::Custom(0));
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = stream(11, SeedStream::Custom(1));
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0usize..=5);
            assert!(b <= 5);
            let c = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&c));
            let d = rng.gen_range(7u32..8);
            assert_eq!(d, 7);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = stream(12, SeedStream::Custom(2));
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = stream(13, SeedStream::Custom(3));
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = stream(14, SeedStream::Custom(4));
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        let mut rng = stream(15, SeedStream::Custom(5));
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn standard_normal_has_unit_moments() {
        let mut rng = stream(16, SeedStream::Custom(6));
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn gumbel_draws_are_finite() {
        let mut rng = stream(17, SeedStream::Custom(7));
        assert!((0..10_000).all(|_| rng.gumbel01().is_finite()));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = stream(3, SeedStream::ClientQueue);
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the probability of the identity permutation is
        // negligible; treat identity as a shuffle failure.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_degenerate_lengths() {
        let mut rng = stream(3, SeedStream::ClientQueue);
        let mut empty: [u8; 0] = [];
        shuffle(&mut empty, &mut rng);
        let mut single = [42];
        shuffle(&mut single, &mut rng);
        assert_eq!(single, [42]);
    }

    #[test]
    fn state_snapshot_resumes_the_stream_exactly() {
        use crate::ser::{parse_json, ToJson};
        let mut rng = stream(11, SeedStream::Distill);
        for _ in 0..100 {
            rng.next_u64();
        }
        let json = rng.to_json();
        let mut resumed = StdRng::from_json(&parse_json(&json).unwrap()).unwrap();
        for _ in 0..50 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn invalid_rng_states_are_rejected() {
        use crate::ser::parse_json;
        assert!(StdRng::from_json(&parse_json("[0,0,0,0]").unwrap()).is_err());
        assert!(StdRng::from_json(&parse_json("[1,2,3]").unwrap()).is_err());
    }
}
