//! Deterministic, purpose-keyed random streams.
//!
//! Federated experiments have many independent sources of randomness
//! (parameter init, client-queue shuffles, negative sampling, KD item
//! sampling, ...). Deriving each from a single experiment seed *and* a
//! stable purpose key means adding a new consumer never perturbs the draws
//! of existing ones — a property the reproducibility tests rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stable stream identifiers for every random consumer in the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeedStream {
    /// Public parameter initialisation (item embeddings, FFN weights).
    ParamInit,
    /// Per-client private user-embedding initialisation.
    UserInit,
    /// Synthetic dataset generation.
    Dataset,
    /// Train/validation/test splitting.
    Split,
    /// Negative sampling during local training.
    Negatives,
    /// Client queue shuffling at the start of each epoch.
    ClientQueue,
    /// Knowledge-distillation item subset sampling.
    Distill,
    /// Evaluation-time tie-breaking / sampling.
    Eval,
    /// Failure injection (client drop simulation).
    Faults,
    /// Free-form stream for tests and tools.
    Custom(u64),
}

impl SeedStream {
    fn key(self) -> u64 {
        match self {
            SeedStream::ParamInit => 0x5045_5249,
            SeedStream::UserInit => 0x5553_4552,
            SeedStream::Dataset => 0x4441_5441,
            SeedStream::Split => 0x5350_4c54,
            SeedStream::Negatives => 0x4e45_4753,
            SeedStream::ClientQueue => 0x5155_4555,
            SeedStream::Distill => 0x4449_5354,
            SeedStream::Eval => 0x4556_414c,
            SeedStream::Faults => 0x4641_554c,
            SeedStream::Custom(k) => 0xc000_0000_0000_0000 ^ k,
        }
    }
}

/// Derives a deterministic [`StdRng`] from `(experiment seed, stream)`.
///
/// Uses SplitMix64 over the combined key so nearby seeds produce unrelated
/// streams.
pub fn stream(seed: u64, which: SeedStream) -> StdRng {
    let mixed = split_mix64(seed ^ split_mix64(which.key()));
    StdRng::seed_from_u64(mixed)
}

/// Derives a sub-stream keyed by an extra index (e.g. a client id), so that
/// per-client randomness is independent of iteration order.
pub fn substream(seed: u64, which: SeedStream, index: u64) -> StdRng {
    let mixed = split_mix64(seed ^ split_mix64(which.key()) ^ split_mix64(index.wrapping_add(0x9e37)));
    StdRng::seed_from_u64(mixed)
}

/// SplitMix64 finaliser — a cheap, well-distributed 64-bit mixer.
fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fisher–Yates shuffle driven by the supplied RNG (extracted so protocol
/// code and tests share one implementation).
pub fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let a: Vec<u32> = stream(7, SeedStream::Dataset).sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> = stream(7, SeedStream::Dataset).sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_decorrelate() {
        let a: u64 = stream(7, SeedStream::Dataset).gen();
        let b: u64 = stream(7, SeedStream::Split).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a: u64 = stream(1, SeedStream::ParamInit).gen();
        let b: u64 = stream(2, SeedStream::ParamInit).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn substreams_differ_per_index() {
        let a: u64 = substream(7, SeedStream::UserInit, 0).gen();
        let b: u64 = substream(7, SeedStream::UserInit, 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn custom_streams_are_keyed() {
        let a: u64 = stream(7, SeedStream::Custom(1)).gen();
        let b: u64 = stream(7, SeedStream::Custom(2)).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = stream(3, SeedStream::ClientQueue);
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the probability of the identity permutation is
        // negligible; treat identity as a shuffle failure.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_degenerate_lengths() {
        let mut rng = stream(3, SeedStream::ClientQueue);
        let mut empty: [u8; 0] = [];
        shuffle(&mut empty, &mut rng);
        let mut single = [42];
        shuffle(&mut single, &mut rng);
        assert_eq!(single, [42]);
    }
}
