//! Minimal JSON emission *and* reading — the workspace's replacement for
//! serde derives.
//!
//! The workspace must build offline with an empty cargo registry, so
//! result snapshotting cannot lean on `serde`/`serde_json`. This module
//! provides the small surface the experiment harness actually needs:
//! allocation-light JSON *emission* of report types ([`ToJson`]), with
//! hand-written impls where a derive used to sit, plus a matching
//! *reader* ([`parse_json`] → [`JsonValue`] with typed accessors) so
//! checkpoints written by the emitter can be read back for session
//! resume.
//!
//! Emission rules:
//! * floats print via Rust's shortest-roundtrip `Display`; non-finite
//!   values become `null` (JSON has no NaN/Infinity);
//! * strings are escaped per RFC 8259 (quote, backslash, control chars);
//! * field order is the declaration order of the hand impl, making
//!   snapshots stable across runs and suitable for textual diffing.
//!
//! Reading rules:
//! * numbers keep their *lexical* form until a typed accessor parses
//!   them, so `u64` stays exact and a float written by the emitter reads
//!   back bit-identically (Rust's `Display`/`parse` pair round-trips the
//!   shortest representation);
//! * `null` read as a float yields NaN, mirroring the emitter's
//!   non-finite → `null` mapping;
//! * the grammar is strict RFC 8259 (no comments, no trailing commas,
//!   full document consumed).

/// Types that can write themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Renders this value as a standalone JSON document.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Escapes and quotes `s` per RFC 8259.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Streaming object writer: `obj(out, |o| { o.field("a", &1); })`.
pub struct ObjWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjWriter<'a> {
    /// Appends `"name": <value>` (with the separating comma as needed).
    pub fn field(&mut self, name: &str, value: &dyn ToJson) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, name);
        self.out.push(':');
        value.write_json(self.out);
        self
    }
}

/// Writes one JSON object; fields are emitted inside the closure.
pub fn obj(out: &mut String, fields: impl FnOnce(&mut ObjWriter)) {
    out.push('{');
    let mut w = ObjWriter { out, first: true };
    fields(&mut w);
    out.push('}');
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for f32 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

// ---------------------------------------------------------------------------
// Reader: tokenizer + typed accessors
// ---------------------------------------------------------------------------

/// Error produced while parsing a JSON document or while reading a parsed
/// value through a typed accessor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset into the source where a *parse* error occurred
    /// (`None` for accessor errors on an already-parsed tree).
    offset: Option<usize>,
}

impl JsonError {
    /// A semantic error raised by a typed accessor or a `from_json`
    /// constructor (no source offset).
    pub fn msg(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: None,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} (at byte {o})", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value, borrowing from the source document.
///
/// Numbers keep their lexical form ([`JsonValue::Num`] holds the source
/// token) so that integer width and float bit patterns are decided by the
/// typed accessor that finally consumes them, not by an intermediate
/// `f64`. The token is a *borrowed* slice of the input: checkpoints are
/// dominated by `f32` arrays, so owning a `String` per number made the
/// parsed tree cost a large multiple of the document size. Strings stay
/// owned because escape sequences must be decoded into fresh storage.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue<'a> {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source token (e.g. `-1.5e3`), borrowed from
    /// the parsed document.
    Num(&'a str),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue<'a>>),
    /// An object, in source field order.
    Obj(Vec<(String, JsonValue<'a>)>),
}

/// Parses a complete JSON document (the whole input must be one value).
/// The returned tree borrows number tokens from `src`.
pub fn parse_json(src: &str) -> Result<JsonValue<'_>, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at("trailing characters after document", p.pos));
    }
    Ok(value)
}

/// Maximum container nesting the parser accepts (guards the call stack).
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(JsonError::at(format!("expected `{lit}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue<'a>, JsonError> {
        match self.peek() {
            None => Err(JsonError::at("unexpected end of input", self.pos)),
            Some(b'n') => self.expect("null").map(|()| JsonValue::Null),
            Some(b't') => self.expect("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.expect("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(JsonError::at(
                format!("unexpected character `{}`", c as char),
                self.pos,
            )),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(JsonError::at("nesting too deep", self.pos));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<JsonValue<'a>, JsonError> {
        self.enter()?;
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue<'a>, JsonError> {
        self.enter()?;
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(JsonError::at("expected object key", self.pos));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(JsonError::at("expected `:` after key", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue<'a>, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(JsonError::at("malformed number", self.pos)),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at("digits required after `.`", self.pos));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at("digits required in exponent", self.pos));
            }
            self.digits();
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number token");
        Ok(JsonValue::Num(tok))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::at("invalid utf-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(JsonError::at("raw control character in string", self.pos)),
                None => return Err(JsonError::at("unterminated string", self.pos)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self
            .peek()
            .ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let ch = if (0xd800..0xdc00).contains(&hi) {
                    // High surrogate: a low surrogate escape must follow.
                    if self.expect("\\u").is_err() {
                        return Err(JsonError::at("unpaired surrogate", self.pos));
                    }
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(JsonError::at("invalid low surrogate", self.pos));
                    }
                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    char::from_u32(code)
                        .ok_or_else(|| JsonError::at("invalid surrogate pair", self.pos))?
                } else {
                    char::from_u32(hi)
                        .ok_or_else(|| JsonError::at("unpaired surrogate", self.pos))?
                };
                out.push(ch);
            }
            _ => return Err(JsonError::at("unknown escape", self.pos - 1)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::at("truncated \\u escape", self.pos));
        }
        let tok = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::at("non-ascii \\u escape", self.pos))?;
        let v = u32::from_str_radix(tok, 16)
            .map_err(|_| JsonError::at("non-hex \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }
}

impl<'a> JsonValue<'a> {
    fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }

    /// The value of field `key`; errors on a missing field or non-object.
    pub fn get(&self, key: &str) -> Result<&JsonValue<'a>, JsonError> {
        self.opt(key)
            .ok_or_else(|| JsonError::msg(format!("missing field `{key}`")))
    }

    /// The value of field `key`, or `None` when absent. Returns `None`
    /// (rather than erroring) on non-objects so optional lookups compose.
    pub fn opt(&self, key: &str) -> Option<&JsonValue<'a>> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The fields of an object.
    pub fn as_obj(&self) -> Result<&[(String, JsonValue<'a>)], JsonError> {
        match self {
            JsonValue::Obj(fields) => Ok(fields),
            other => Err(JsonError::msg(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }

    /// The elements of an array.
    pub fn as_arr(&self) -> Result<&[JsonValue<'a>], JsonError> {
        match self {
            JsonValue::Arr(items) => Ok(items),
            other => Err(JsonError::msg(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// String content.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(JsonError::msg(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// Boolean content.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(JsonError::msg(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    fn num(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::Num(tok) => Ok(tok),
            other => Err(JsonError::msg(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// Unsigned integer content (exact; rejects fractions and overflow).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let tok = self.num()?;
        tok.parse()
            .map_err(|_| JsonError::msg(format!("`{tok}` is not a u64")))
    }

    /// Signed integer content.
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        let tok = self.num()?;
        tok.parse()
            .map_err(|_| JsonError::msg(format!("`{tok}` is not an i64")))
    }

    /// `usize` content (via `u64`).
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let v = self.as_u64()?;
        usize::try_from(v).map_err(|_| JsonError::msg(format!("{v} overflows usize")))
    }

    /// `f64` content. `null` reads as NaN, mirroring the emitter's
    /// non-finite → `null` rule; finite values written by [`ToJson`]
    /// read back bit-identically.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        if self.is_null() {
            return Ok(f64::NAN);
        }
        let tok = self.num()?;
        tok.parse()
            .map_err(|_| JsonError::msg(format!("`{tok}` is not an f64")))
    }

    /// `f32` content, parsed directly at `f32` precision (bit-identical
    /// round-trip with the emitter). `null` reads as NaN.
    pub fn as_f32(&self) -> Result<f32, JsonError> {
        if self.is_null() {
            return Ok(f32::NAN);
        }
        let tok = self.num()?;
        tok.parse()
            .map_err(|_| JsonError::msg(format!("`{tok}` is not an f32")))
    }

    /// Reads an array of `f32` (checkpointed parameter buffers).
    pub fn as_f32_vec(&self) -> Result<Vec<f32>, JsonError> {
        self.as_arr()?.iter().map(JsonValue::as_f32).collect()
    }

    /// Reads an array of `f64`.
    pub fn as_f64_vec(&self) -> Result<Vec<f64>, JsonError> {
        self.as_arr()?.iter().map(JsonValue::as_f64).collect()
    }

    /// Reads an array of `u64`.
    pub fn as_u64_vec(&self) -> Result<Vec<u64>, JsonError> {
        self.as_arr()?.iter().map(JsonValue::as_u64).collect()
    }

    /// Reads an array of `usize`.
    pub fn as_usize_vec(&self) -> Result<Vec<usize>, JsonError> {
        self.as_arr()?.iter().map(JsonValue::as_usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3usize.to_json(), "3");
        assert_eq!((-4i64).to_json(), "-4");
        assert_eq!(true.to_json(), "true");
        assert_eq!(0.5f64.to_json(), "0.5");
        assert_eq!(1.25f32.to_json(), "1.25");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f32::INFINITY.to_json(), "null");
        assert_eq!(f64::NEG_INFINITY.to_json(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("plain".to_json(), "\"plain\"");
        assert_eq!("a\"b\\c".to_json(), "\"a\\\"b\\\\c\"");
        assert_eq!("line\nbreak\ttab".to_json(), "\"line\\nbreak\\ttab\"");
        assert_eq!("\u{1}".to_json(), "\"\\u0001\"");
        assert_eq!("héllo →".to_json(), "\"héllo →\"");
    }

    #[test]
    fn sequences_render() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        assert_eq!([0.5f32; 2].to_json(), "[0.5,0.5]");
        let empty: Vec<u32> = vec![];
        assert_eq!(empty.to_json(), "[]");
    }

    #[test]
    fn options_render() {
        assert_eq!(Some(7u32).to_json(), "7");
        assert_eq!(None::<u32>.to_json(), "null");
    }

    #[test]
    fn objects_render_in_field_order() {
        struct P {
            x: f32,
            name: String,
        }
        impl ToJson for P {
            fn write_json(&self, out: &mut String) {
                obj(out, |o| {
                    o.field("x", &self.x).field("name", &self.name);
                });
            }
        }
        let p = P {
            x: 1.5,
            name: "client".into(),
        };
        assert_eq!(p.to_json(), r#"{"x":1.5,"name":"client"}"#);
    }

    #[test]
    fn nested_objects_render() {
        struct Inner(u32);
        impl ToJson for Inner {
            fn write_json(&self, out: &mut String) {
                obj(out, |o| {
                    o.field("v", &self.0);
                });
            }
        }
        let xs = vec![Inner(1), Inner(2)];
        assert_eq!(xs.to_json(), r#"[{"v":1},{"v":2}]"#);
    }

    // --- reader ------------------------------------------------------------

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("\"hi\"").unwrap().as_str().unwrap(), "hi");
        assert_eq!(parse_json("-12").unwrap().as_i64().unwrap(), -12);
        assert_eq!(parse_json("0").unwrap().as_u64().unwrap(), 0);
        assert_eq!(parse_json("1.5e3").unwrap().as_f64().unwrap(), 1500.0);
    }

    #[test]
    fn parses_containers_and_accessors() {
        let v = parse_json(r#"{"a":[1,2,3],"b":{"c":"x"},"d":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str().unwrap(), "x");
        assert!(v.get("d").unwrap().is_null());
        assert!(v.opt("missing").is_none());
        assert!(v.get("missing").is_err());
        assert_eq!(v.as_obj().unwrap().len(), 3);
    }

    #[test]
    fn u64_integers_roundtrip_exactly() {
        for x in [0u64, 1, u64::MAX, (1 << 53) + 1] {
            let back = parse_json(&x.to_json()).unwrap().as_u64().unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        let values = [
            0.1f32,
            -0.0,
            f32::MIN_POSITIVE,
            1.0e-45, // subnormal
            f32::MAX,
            1.0 / 3.0,
            -123.456e-7,
        ];
        for &x in &values {
            let back = parse_json(&x.to_json()).unwrap().as_f32().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        let values64 = [
            0.1f64,
            -0.0,
            f64::MIN_POSITIVE,
            5.0e-324,
            f64::MAX,
            2.0 / 3.0,
        ];
        for &x in &values64 {
            let back = parse_json(&x.to_json()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn nan_emits_null_and_reads_back_nan() {
        let json = f32::NAN.to_json();
        let v = parse_json(&json).unwrap();
        assert!(v.as_f32().unwrap().is_nan());
        assert!(v.as_f64().unwrap().is_nan());
    }

    #[test]
    fn escaped_strings_roundtrip() {
        for s in ["plain", "a\"b\\c", "line\nbreak\ttab", "\u{1}", "héllo →"] {
            let json = s.to_json();
            let back = parse_json(&json).unwrap();
            assert_eq!(back.as_str().unwrap(), s);
        }
        // Escapes the emitter never produces but readers must accept.
        assert_eq!(
            parse_json(r#""A\/\b\f""#).unwrap().as_str().unwrap(),
            "A/\u{8}\u{c}"
        );
        assert_eq!(parse_json(r#""😀""#).unwrap().as_str().unwrap(), "😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "tru",
            "[1,2",
            "{\"a\":}",
            "{\"a\" 1}",
            "1 2",
            "01",
            "1.",
            "1e",
            "[1,]",
            "{,}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessor_type_mismatches_error() {
        let v = parse_json(r#"{"s":"x","n":3}"#).unwrap();
        assert!(v.get("s").unwrap().as_u64().is_err());
        assert!(v.get("n").unwrap().as_str().is_err());
        assert!(v.get("n").unwrap().as_arr().is_err());
        assert!(v.as_arr().is_err());
        // Fractions are not integers.
        assert!(parse_json("1.5").unwrap().as_u64().is_err());
    }

    #[test]
    fn emitted_objects_parse_back() {
        struct P {
            x: f32,
            name: String,
            tags: Vec<u32>,
        }
        impl ToJson for P {
            fn write_json(&self, out: &mut String) {
                obj(out, |o| {
                    o.field("x", &self.x)
                        .field("name", &self.name)
                        .field("tags", &self.tags);
                });
            }
        }
        let p = P {
            x: 0.3333334,
            name: "client \"7\"".into(),
            tags: vec![4, 5],
        };
        let json = p.to_json();
        let v = parse_json(&json).unwrap();
        assert_eq!(v.get("x").unwrap().as_f32().unwrap(), p.x);
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), p.name);
        assert_eq!(v.get("tags").unwrap().as_u64_vec().unwrap(), vec![4, 5]);
    }

    #[test]
    fn number_tokens_borrow_from_the_source() {
        // Peak-memory contract: the parsed tree must not copy number
        // tokens — `Num` holds a slice of the source document. A large
        // checkpoint is almost entirely f32 arrays, so this is the
        // difference between tree size O(doc) and O(doc * k).
        let src = String::from("[1.5,-2e3,0.25]");
        let v = parse_json(&src).unwrap();
        let range = src.as_ptr() as usize..src.as_ptr() as usize + src.len();
        for item in v.as_arr().unwrap() {
            match item {
                JsonValue::Num(tok) => {
                    let p = tok.as_ptr() as usize;
                    assert!(
                        range.contains(&p),
                        "number token `{tok}` was copied out of the source"
                    );
                }
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&ok).is_ok());
    }
}
