//! Minimal JSON emission — the workspace's replacement for serde derives.
//!
//! The workspace must build offline with an empty cargo registry, so
//! result snapshotting cannot lean on `serde`/`serde_json`. This module
//! provides the small surface the experiment harness actually needs:
//! one-way, allocation-light JSON *emission* of report types ([`ToJson`]),
//! with hand-written impls where a derive used to sit. There is
//! deliberately no deserializer — nothing in the workspace reads these
//! snapshots back; they exist for external tooling (plots, diffing runs).
//!
//! Emission rules:
//! * floats print via Rust's shortest-roundtrip `Display`; non-finite
//!   values become `null` (JSON has no NaN/Infinity);
//! * strings are escaped per RFC 8259 (quote, backslash, control chars);
//! * field order is the declaration order of the hand impl, making
//!   snapshots stable across runs and suitable for textual diffing.

/// Types that can write themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Renders this value as a standalone JSON document.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Escapes and quotes `s` per RFC 8259.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Streaming object writer: `obj(out, |o| { o.field("a", &1); })`.
pub struct ObjWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjWriter<'a> {
    /// Appends `"name": <value>` (with the separating comma as needed).
    pub fn field(&mut self, name: &str, value: &dyn ToJson) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, name);
        self.out.push(':');
        value.write_json(self.out);
        self
    }
}

/// Writes one JSON object; fields are emitted inside the closure.
pub fn obj(out: &mut String, fields: impl FnOnce(&mut ObjWriter)) {
    out.push('{');
    let mut w = ObjWriter { out, first: true };
    fields(&mut w);
    out.push('}');
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for f32 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3usize.to_json(), "3");
        assert_eq!((-4i64).to_json(), "-4");
        assert_eq!(true.to_json(), "true");
        assert_eq!(0.5f64.to_json(), "0.5");
        assert_eq!(1.25f32.to_json(), "1.25");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f32::INFINITY.to_json(), "null");
        assert_eq!(f64::NEG_INFINITY.to_json(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("plain".to_json(), "\"plain\"");
        assert_eq!("a\"b\\c".to_json(), "\"a\\\"b\\\\c\"");
        assert_eq!("line\nbreak\ttab".to_json(), "\"line\\nbreak\\ttab\"");
        assert_eq!("\u{1}".to_json(), "\"\\u0001\"");
        assert_eq!("héllo →".to_json(), "\"héllo →\"");
    }

    #[test]
    fn sequences_render() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        assert_eq!([0.5f32; 2].to_json(), "[0.5,0.5]");
        let empty: Vec<u32> = vec![];
        assert_eq!(empty.to_json(), "[]");
    }

    #[test]
    fn options_render() {
        assert_eq!(Some(7u32).to_json(), "7");
        assert_eq!(None::<u32>.to_json(), "null");
    }

    #[test]
    fn objects_render_in_field_order() {
        struct P {
            x: f32,
            name: String,
        }
        impl ToJson for P {
            fn write_json(&self, out: &mut String) {
                obj(out, |o| {
                    o.field("x", &self.x).field("name", &self.name);
                });
            }
        }
        let p = P {
            x: 1.5,
            name: "client".into(),
        };
        assert_eq!(p.to_json(), r#"{"x":1.5,"name":"client"}"#);
    }

    #[test]
    fn nested_objects_render() {
        struct Inner(u32);
        impl ToJson for Inner {
            fn write_json(&self, out: &mut String) {
                obj(out, |o| {
                    o.field("v", &self.0);
                });
            }
        }
        let xs = vec![Inner(1), Inner(2)];
        assert_eq!(xs.to_json(), r#"[{"v":1},{"v":2}]"#);
    }
}
