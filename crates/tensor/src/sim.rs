//! Pairwise cosine-similarity matrices and the analytic gradient of the
//! similarity-alignment loss.
//!
//! Relation-based ensemble self-distillation (paper Eq. 16–17) transfers
//! knowledge between heterogeneous item-embedding tables by aligning the
//! *relative geometry* of a sampled item subset: each table's pairwise
//! cosine-similarity matrix is pulled toward the tables' ensemble average.
//!
//! * [`cosine_similarity_matrix`] computes `S(V)` with `S_ij = cos(v_i, v_j)`.
//! * [`alignment_loss_grad`] evaluates `L = ‖S(V) − T‖²_F` and its exact
//!   gradient with respect to every row of `V` — the server-side
//!   distillation step needs no autograd.

use crate::matrix::Matrix;
use crate::ops::dot;

/// Norm floor protecting cosine computations from zero rows.
const NORM_EPS: f32 = 1e-12;

/// Pairwise cosine-similarity matrix of the rows of `v` (`k x k` for a
/// `k x d` input). Zero rows yield zero similarity against everything and
/// 1 on their own diagonal entry by convention.
///
/// The pairwise dot products come from the blocked [`Matrix::row_gram`]
/// kernel (one `V·Vᵀ` product) rather than `k²/2` scalar-dot calls; the
/// Gram diagonal doubles as the squared row norms.
pub fn cosine_similarity_matrix(v: &Matrix) -> Matrix {
    let k = v.rows();
    let mut s = v.row_gram();
    let norms: Vec<f32> = (0..k).map(|i| s.get(i, i).sqrt()).collect();
    for i in 0..k {
        s.set(i, i, 1.0);
        for j in i + 1..k {
            let denom = norms[i] * norms[j];
            let value = if denom > NORM_EPS {
                s.get(i, j) / denom
            } else {
                0.0
            };
            s.set(i, j, value);
            s.set(j, i, value);
        }
    }
    s
}

/// Squared-Frobenius alignment loss `‖S(V) − T‖²_F` and its gradient with
/// respect to `V`'s rows.
///
/// Uses `∂cos(v_i,v_j)/∂v_i = v_j/(‖v_i‖‖v_j‖) − cos(v_i,v_j)·v_i/‖v_i‖²`,
/// summed over both orientations of every off-diagonal pair. Collecting
/// the scalar weights into a `k x k` coefficient matrix `P` reduces the
/// whole accumulation to one blocked product `grad = P · V`:
///
/// ```text
/// D = S − T
/// P_ij = 2·(D_ij + D_ji)/(‖v_i‖‖v_j‖)             (i ≠ j)
/// P_ii = −(2/‖v_i‖²)·Σ_{j≠i} (D_ij + D_ji)·S_ij
/// ```
///
/// `S` is symmetric by construction but `target` need not be — both
/// orientations of each pair are summed, so an asymmetric target gets
/// the exact gradient of the reported loss (which also sums both
/// triangles). For a symmetric target `D_ij + D_ji = 2·D_ij` exactly, so
/// the coefficients reduce to `4·D_ij/(‖v_i‖‖v_j‖)`.
///
/// Diagonal entries of `S` are constant 1 and contribute no gradient;
/// targets should carry 1 on the diagonal so they contribute no loss
/// either.
///
/// # Panics
/// Panics if `target` is not `v.rows() x v.rows()`.
pub fn alignment_loss_grad(v: &Matrix, target: &Matrix) -> (f32, Matrix) {
    let k = v.rows();
    assert_eq!(
        (target.rows(), target.cols()),
        (k, k),
        "target must be {k}x{k}"
    );
    let s = cosine_similarity_matrix(v);
    let norms: Vec<f32> = (0..k)
        .map(|i| dot(v.row(i), v.row(i)).sqrt().max(NORM_EPS))
        .collect();

    let mut loss = 0.0_f64;
    let mut p = Matrix::zeros(k, k);
    for i in 0..k {
        let mut diag = 0.0f32;
        for j in 0..k {
            let diff = s.get(i, j) - target.get(i, j);
            loss += (diff as f64) * (diff as f64);
            if i == j {
                continue; // S_ii ≡ 1: no gradient flows.
            }
            let both = diff + (s.get(j, i) - target.get(j, i));
            p.set(i, j, 2.0 * both / (norms[i] * norms[j]));
            diag += both * s.get(i, j);
        }
        p.set(i, i, -2.0 * diag / (norms[i] * norms[i]));
    }
    (loss as f32, p.matmul(v))
}

/// Elementwise mean of several equally shaped matrices — the ensemble
/// similarity target of Eq. 16.
///
/// # Panics
/// Panics on an empty input or mismatched shapes.
pub fn mean_of(matrices: &[&Matrix]) -> Matrix {
    assert!(!matrices.is_empty(), "mean_of needs at least one matrix");
    let mut acc = matrices[0].clone();
    for m in &matrices[1..] {
        acc.axpy(1.0, m);
    }
    acc.scale(1.0 / matrices.len() as f32);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::rng::{stream, SeedStream};

    #[test]
    fn similarity_of_identical_rows_is_one() {
        let v = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 2.0, 4.0, 6.0]);
        let s = cosine_similarity_matrix(&v);
        assert!((s.get(0, 1) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similarity_of_orthogonal_rows_is_zero() {
        let v = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let s = cosine_similarity_matrix(&v);
        assert!(s.get(0, 1).abs() < 1e-6);
    }

    #[test]
    fn similarity_of_opposite_rows_is_minus_one() {
        let v = Matrix::from_vec(2, 2, vec![1.0, 1.0, -2.0, -2.0]);
        let s = cosine_similarity_matrix(&v);
        assert!((s.get(0, 1) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn similarity_matrix_is_symmetric_with_unit_diagonal() {
        let mut rng = stream(31, SeedStream::Custom(20));
        let v = init::normal(8, 5, 1.0, &mut rng);
        let s = cosine_similarity_matrix(&v);
        for i in 0..8 {
            assert!((s.get(i, i) - 1.0).abs() < 1e-6);
            for j in 0..8 {
                assert!((s.get(i, j) - s.get(j, i)).abs() < 1e-6);
                assert!(s.get(i, j) >= -1.0 - 1e-5 && s.get(i, j) <= 1.0 + 1e-5);
            }
        }
    }

    #[test]
    fn zero_rows_are_handled() {
        let v = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let s = cosine_similarity_matrix(&v);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(0, 0), 1.0);
    }

    #[test]
    fn loss_is_zero_when_already_aligned() {
        let mut rng = stream(32, SeedStream::Custom(21));
        let v = init::normal(6, 4, 1.0, &mut rng);
        let target = cosine_similarity_matrix(&v);
        let (loss, grad) = alignment_loss_grad(&v, &target);
        assert!(loss < 1e-10);
        assert!(grad.max_abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = stream(33, SeedStream::Custom(22));
        let v = init::normal(5, 3, 1.0, &mut rng);
        let t_src = init::normal(5, 3, 1.0, &mut rng);
        let target = cosine_similarity_matrix(&t_src);
        let (_, grad) = alignment_loss_grad(&v, &target);

        let eps = 1e-3;
        for r in 0..v.rows() {
            for c in 0..v.cols() {
                let mut plus = v.clone();
                *plus.get_mut(r, c) += eps;
                let mut minus = v.clone();
                *minus.get_mut(r, c) -= eps;
                let (lp, _) = alignment_loss_grad(&plus, &target);
                let (lm, _) = alignment_loss_grad(&minus, &target);
                let fd = (lp - lm) / (2.0 * eps);
                let g = grad.get(r, c);
                assert!(
                    (fd - g).abs() < 2e-2 * fd.abs().max(g.abs()).max(1.0),
                    "({r},{c}): analytic {g} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn gradient_matches_finite_differences_for_asymmetric_target() {
        // Regression: the P-matrix refactor briefly read only D_ij, which
        // silently symmetrised the target; the gradient must stay exact
        // for targets where T_ij != T_ji.
        let mut rng = stream(35, SeedStream::Custom(24));
        let v = init::normal(4, 3, 1.0, &mut rng);
        let target = init::normal(4, 4, 0.5, &mut rng); // not symmetric
        let (_, grad) = alignment_loss_grad(&v, &target);

        let eps = 1e-3;
        for r in 0..v.rows() {
            for c in 0..v.cols() {
                let mut plus = v.clone();
                *plus.get_mut(r, c) += eps;
                let mut minus = v.clone();
                *minus.get_mut(r, c) -= eps;
                let (lp, _) = alignment_loss_grad(&plus, &target);
                let (lm, _) = alignment_loss_grad(&minus, &target);
                let fd = (lp - lm) / (2.0 * eps);
                let g = grad.get(r, c);
                assert!(
                    (fd - g).abs() < 2e-2 * fd.abs().max(g.abs()).max(1.0),
                    "({r},{c}): analytic {g} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn gradient_step_reduces_loss() {
        let mut rng = stream(34, SeedStream::Custom(23));
        let mut v = init::normal(8, 4, 1.0, &mut rng);
        let t_src = init::normal(8, 4, 1.0, &mut rng);
        let target = cosine_similarity_matrix(&t_src);
        let (before, grad) = alignment_loss_grad(&v, &target);
        v.axpy(-0.05, &grad);
        let (after, _) = alignment_loss_grad(&v, &target);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn mean_of_averages() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 3.0);
        let m = mean_of(&[&a, &b]);
        assert!(m.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn mean_of_rejects_empty() {
        let _ = mean_of(&[]);
    }
}
