//! Column statistics, covariance, and correlation matrices.
//!
//! Two consumers in the paper:
//!
//! * **Eq. 13 (DDR):** `Lreg(V) = (1/N) ‖corr((V - V̄)/sqrt(var(V)))‖_F`,
//!   the Frobenius norm of the correlation matrix of the (column-
//!   standardised) embedding matrix.
//! * **Table V:** the variance of the singular values of `cov(Vl)` — since
//!   a covariance matrix is symmetric positive semi-definite, its singular
//!   values equal its eigenvalues, which [`crate::eigen`] supplies.
//!
//! Rows are observations (items), columns are embedding dimensions
//! throughout.

use crate::matrix::Matrix;

/// Per-column means of `m` (length = `m.cols()`).
pub fn column_means(m: &Matrix) -> Vec<f32> {
    let (rows, cols) = (m.rows(), m.cols());
    let mut means = vec![0.0_f64; cols];
    for r in 0..rows {
        for (acc, &x) in means.iter_mut().zip(m.row(r)) {
            *acc += x as f64;
        }
    }
    let n = rows.max(1) as f64;
    means.into_iter().map(|s| (s / n) as f32).collect()
}

/// Per-column population variances of `m`.
pub fn column_variances(m: &Matrix) -> Vec<f32> {
    let means = column_means(m);
    let (rows, cols) = (m.rows(), m.cols());
    let mut vars = vec![0.0_f64; cols];
    for r in 0..rows {
        for ((acc, &mu), &x) in vars.iter_mut().zip(&means).zip(m.row(r)) {
            let d = x as f64 - mu as f64;
            *acc += d * d;
        }
    }
    let n = rows.max(1) as f64;
    vars.into_iter().map(|s| (s / n) as f32).collect()
}

/// Column-standardised copy of `m`: each column shifted to zero mean and
/// scaled to unit variance. Columns with variance below `eps` are left at
/// zero after centring (they carry no correlation signal).
pub fn standardize_columns(m: &Matrix, eps: f32) -> Matrix {
    let means = column_means(m);
    let vars = column_variances(m);
    let inv_std: Vec<f32> = vars
        .iter()
        .map(|&v| if v > eps { 1.0 / v.sqrt() } else { 0.0 })
        .collect();
    let mut out = m.clone();
    for r in 0..out.rows() {
        for ((x, &mu), &is) in out.row_mut(r).iter_mut().zip(&means).zip(&inv_std) {
            *x = (*x - mu) * is;
        }
    }
    out
}

/// Population covariance matrix of the columns of `m` (`cols x cols`).
pub fn covariance(m: &Matrix) -> Matrix {
    let means = column_means(m);
    let mut centered = m.clone();
    for r in 0..centered.rows() {
        for (x, &mu) in centered.row_mut(r).iter_mut().zip(&means) {
            *x -= mu;
        }
    }
    let mut cov = centered.gram();
    cov.scale(1.0 / m.rows().max(1) as f32);
    cov
}

/// Correlation matrix of the columns of `m` (`cols x cols`).
///
/// Equivalent to the covariance of the column-standardised matrix; the
/// diagonal is 1 for every column with variance above `eps`, 0 otherwise.
pub fn correlation(m: &Matrix, eps: f32) -> Matrix {
    let z = standardize_columns(m, eps);
    let mut corr = z.gram();
    corr.scale(1.0 / m.rows().max(1) as f32);
    corr
}

/// Variance of the eigenvalues (= singular values) of the covariance
/// matrix of `m` — the Table V dimensional-collapse diagnostic
/// (Eq. 12's inner quantity).
///
/// Higher values mean a few dimensions dominate, i.e. more severe
/// dimensional collapse.
pub fn singular_value_variance(m: &Matrix) -> f32 {
    let cov = covariance(m);
    let eigenvalues = crate::eigen::symmetric_eigenvalues(&cov, 1e-9, 128);
    crate::ops::variance(&eigenvalues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::rng::{stream, SeedStream};

    #[test]
    fn column_means_hand_checked() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 10.0, 3.0, 30.0]);
        let means = column_means(&m);
        assert!((means[0] - 2.0).abs() < 1e-6);
        assert!((means[1] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn column_variances_hand_checked() {
        let m = Matrix::from_vec(2, 1, vec![1.0, 3.0]);
        assert!((column_variances(&m)[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn standardized_columns_have_zero_mean_unit_variance() {
        let mut rng = stream(11, SeedStream::Custom(0));
        let m = init::normal(300, 6, 2.5, &mut rng);
        let z = standardize_columns(&m, 1e-12);
        for (j, (&mu, &var)) in column_means(&z)
            .iter()
            .zip(&column_variances(&z))
            .enumerate()
        {
            assert!(mu.abs() < 1e-4, "col {j} mean {mu}");
            assert!((var - 1.0).abs() < 1e-3, "col {j} var {var}");
        }
    }

    #[test]
    fn constant_column_standardizes_to_zero() {
        let m = Matrix::from_vec(3, 2, vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0]);
        let z = standardize_columns(&m, 1e-12);
        for r in 0..3 {
            assert_eq!(z.get(r, 0), 0.0);
        }
    }

    #[test]
    fn covariance_diagonal_matches_column_variance() {
        let mut rng = stream(12, SeedStream::Custom(1));
        let m = init::normal(200, 4, 1.0, &mut rng);
        let cov = covariance(&m);
        let vars = column_variances(&m);
        for j in 0..4 {
            assert!((cov.get(j, j) - vars[j]).abs() < 1e-4);
        }
    }

    #[test]
    fn covariance_is_symmetric() {
        let mut rng = stream(13, SeedStream::Custom(2));
        let m = init::normal(50, 5, 1.0, &mut rng);
        let cov = covariance(&m);
        for i in 0..5 {
            for j in 0..5 {
                assert!((cov.get(i, j) - cov.get(j, i)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn correlation_diagonal_is_one() {
        let mut rng = stream(14, SeedStream::Custom(3));
        let m = init::normal(400, 6, 3.0, &mut rng);
        let corr = correlation(&m, 1e-12);
        for j in 0..6 {
            assert!(
                (corr.get(j, j) - 1.0).abs() < 1e-3,
                "diag {}",
                corr.get(j, j)
            );
        }
    }

    #[test]
    fn correlation_detects_perfectly_correlated_columns() {
        // Column 1 = 2 * column 0 → correlation 1.
        let m = Matrix::from_fn(100, 2, |r, c| {
            let base = (r as f32).sin();
            if c == 0 {
                base
            } else {
                2.0 * base
            }
        });
        let corr = correlation(&m, 1e-12);
        assert!((corr.get(0, 1) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn independent_columns_have_low_correlation() {
        let mut rng = stream(15, SeedStream::Custom(4));
        let m = init::normal(5000, 2, 1.0, &mut rng);
        let corr = correlation(&m, 1e-12);
        assert!(corr.get(0, 1).abs() < 0.05, "corr {}", corr.get(0, 1));
    }

    #[test]
    fn singular_variance_zero_for_isotropic_higher_for_collapsed() {
        let mut rng = stream(16, SeedStream::Custom(5));
        // Isotropic: independent unit-variance columns.
        let iso = init::normal(2000, 4, 1.0, &mut rng);
        // Collapsed: all four columns are scalar multiples of one factor.
        let collapsed = Matrix::from_fn(2000, 4, |r, c| {
            let f = ((r * 37 % 911) as f32 / 911.0 - 0.5) * 4.0;
            f * (1.0 + c as f32 * 0.1)
        });
        let v_iso = singular_value_variance(&iso);
        let v_col = singular_value_variance(&collapsed);
        assert!(v_col > v_iso * 5.0, "iso {v_iso} collapsed {v_col}");
    }
}
