//! Domain example: serving a synthesized population without loading it.
//!
//! Builds a capacity-scale artifact straight to disk from a
//! `SyntheticProfile` (no training), opens it **lazily**, answers a
//! 64-request batch, and proves the two capacity contracts end to end:
//!
//! 1. **Lazy == eager** — top-K lists served from the lazy, tiled,
//!    sharded path are bit-identical to an eager load of the same file.
//! 2. **O(touched) residency** — after the batch, the lazy store holds
//!    only the records the batch touched, and the resident-footprint
//!    delta of the lazy boot stays below the eager materialisation.
//!
//! ```text
//! cargo run --release --example capacity
//! ```
//!
//! Population size defaults to 20k users × 20k items and can be
//! overridden with `HF_CAPACITY_USERS` / `HF_CAPACITY_ITEMS`; the
//! artifact path defaults to `target/ci-artifacts/capacity_model.hfa`
//! and can be overridden with `HF_CAPACITY_ARTIFACT` (ci.sh greps this
//! example's proof lines).

use hetefedrec::prelude::*;
use hetefedrec::serve::footprint;

fn env_size(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got `{v}`");
            std::process::exit(2);
        }),
        Err(_) => default,
    }
}

fn main() {
    let seed = 4242;
    let users = env_size("HF_CAPACITY_USERS", 20_000);
    let items = env_size("HF_CAPACITY_ITEMS", 20_000);
    let path = std::env::var("HF_CAPACITY_ARTIFACT")
        .unwrap_or_else(|_| "target/ci-artifacts/capacity_model.hfa".to_string());

    // --- Synthesize straight to disk ---------------------------------------
    let profile = SyntheticProfile::new(users, items);
    let t0 = std::time::Instant::now();
    let stats = ModelArtifact::synthesize_to_file(&profile, TierDims::new(4, 8, 16), seed, &path)
        .expect("profile synthesizes");
    println!(
        "synthesized {users} users x {items} items in {:.2}s: {} on disk, {} interactions",
        t0.elapsed().as_secs_f64(),
        footprint::fmt_bytes(stats.file_bytes),
        stats.interactions
    );

    // --- Lazy boot (measured first, so eager can't pollute the delta) ------
    let rss_before = footprint::resident_bytes();
    let t0 = std::time::Instant::now();
    let lazy = ModelArtifact::load_file_lazy(&path, LazyConfig::default()).expect("lazy open");
    assert!(lazy.is_lazy());
    let lazy_serve = RecommenderBuilder::new(lazy)
        .default_k(10)
        .item_half_mode(ItemHalfMode::Tiled { max_panels: 64 })
        .build()
        .expect("valid lazy serving configuration");
    println!("lazy boot in {:.3}s", t0.elapsed().as_secs_f64());

    // A 64-request batch striding the population, cold start included.
    let requests: Vec<RecommendRequest> = (0..63)
        .map(|i| RecommendRequest::new(i * 104_729 % users))
        .chain([RecommendRequest::new(usize::MAX)])
        .collect();
    let lazy_batch = lazy_serve.recommend_batch(&requests);
    let touched = lazy_serve.artifact().cached_user_records();
    let lazy_delta = match (rss_before, footprint::resident_bytes()) {
        (Some(a), Some(b)) => Some(b.saturating_sub(a)),
        _ => None,
    };
    println!(
        "served {} requests; {touched} of {users} user records resident (O(touched), not O(users))",
        requests.len()
    );
    assert!(
        touched <= requests.len(),
        "lazy store decoded more records than the batch touched"
    );

    // --- Eager reference ----------------------------------------------------
    let eager = ModelArtifact::load_file(&path).expect("eager load");
    let eager_serve = RecommenderBuilder::new(eager)
        .default_k(10)
        .build()
        .expect("valid eager serving configuration");
    let eager_batch = eager_serve.recommend_batch(&requests);

    let mut mismatches = 0usize;
    for (a, b) in eager_batch.iter().zip(&lazy_batch) {
        let same = a.items.len() == b.items.len()
            && a.items
                .iter()
                .zip(&b.items)
                .all(|(x, y)| x.item == y.item && x.score.to_bits() == y.score.to_bits());
        if !same {
            eprintln!("user {}: lazy and eager rankings differ", a.user);
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!(
            "FAILED: {mismatches} of {} responses differ",
            requests.len()
        );
        std::process::exit(1);
    }
    println!(
        "lazy == eager rankings verified ({} responses bit-identical)",
        requests.len()
    );

    // The eager in-memory floor, from the artifact's own section sizes.
    let eager_floor = stats.tables_bytes + stats.users_bytes + 4 * items as u64;
    match lazy_delta {
        Some(delta) => println!(
            "resident delta of the lazy path: {} (eager materialises at least {})",
            footprint::fmt_bytes(delta),
            footprint::fmt_bytes(eager_floor)
        ),
        None => println!(
            "resident delta unavailable on this platform; eager materialises at least {}",
            footprint::fmt_bytes(eager_floor)
        ),
    }
    println!("artifact kept at {path}");
}
