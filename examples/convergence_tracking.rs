//! Tooling example: track convergence, communication, and the
//! dimensional-collapse diagnostic across training — the observability a
//! production deployment of HeteFedRec would export.
//!
//! ```text
//! cargo run --release --example convergence_tracking
//! ```

use hetefedrec::prelude::*;

fn main() {
    let seed = 3;
    let data = DatasetProfile::MovieLens.config_scaled(0.03).generate(seed);
    let split = SplitDataset::paper_split(&data, seed);

    let mut cfg = TrainConfig::paper_defaults(ModelKind::LightGcn, DatasetProfile::MovieLens);
    cfg.epochs = 6;
    cfg.seed = seed;

    let mut trainer = Trainer::new(cfg.clone(), Strategy::HeteFedRec(Ablation::FULL), split);
    println!(
        "{:>5} {:>12} {:>10} {:>10} {:>14} {:>12}",
        "epoch", "train loss", "Recall@20", "NDCG@20", "collapse(Vl)", "upload MiB"
    );
    for epoch in 1..=cfg.epochs {
        let loss = trainer.run_epoch();
        let eval = trainer.evaluate();
        let collapse = trainer.server().collapse_metric(Tier::Large);
        println!(
            "{epoch:>5} {loss:>12.4} {:>10.5} {:>10.5} {collapse:>14.5} {:>12.2}",
            eval.overall.recall,
            eval.overall.ndcg,
            trainer.ledger().upload_bytes as f64 / (1024.0 * 1024.0),
        );
    }

    // run_epoch was driven manually (no History records), so summarise
    // from the live evaluation.
    let final_eval = trainer.evaluate();
    println!(
        "\nfinal NDCG@20 {:.5}; Eq.10 prefix violation after distillation: {:.2e}",
        final_eval.overall.ndcg,
        trainer.server().eq10_violation()
    );
}
