//! Tooling example: track convergence, communication, and the
//! dimensional-collapse diagnostic across training — the observability a
//! production deployment of HeteFedRec would export — using the session
//! event stream plus an early-stopping observer.
//!
//! ```text
//! cargo run --release --example convergence_tracking
//! ```

use hetefedrec::prelude::*;

fn main() {
    let seed = 3;
    let data = DatasetProfile::MovieLens.config_scaled(0.03).generate(seed);
    let split = SplitDataset::paper_split(&data, seed);

    let mut cfg = TrainConfig::paper_defaults(ModelKind::LightGcn, DatasetProfile::MovieLens);
    cfg.epochs = 6;
    cfg.seed = seed;

    // Early stopping: give up after 3 evaluations without an NDCG
    // improvement of at least 1e-4 — long runs stop themselves once the
    // curve flattens instead of burning the full epoch budget.
    let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
        .early_stopping(3, 1e-4)
        .build()
        .expect("valid configuration");

    println!(
        "{:>5} {:>7} {:>12} {:>10} {:>10} {:>14} {:>12}",
        "epoch", "rounds", "train loss", "Recall@20", "NDCG@20", "collapse(Vl)", "upload MiB"
    );
    let mut rounds_this_epoch = 0usize;
    while let Some(event) = session.step() {
        match event {
            SessionEvent::Round(_) => rounds_this_epoch += 1,
            SessionEvent::Epoch(e) => {
                let eval = e.eval.as_ref().expect("default cadence");
                let collapse = session.server().collapse_metric(Tier::Large);
                println!(
                    "{:>5} {:>7} {:>12.4} {:>10.5} {:>10.5} {collapse:>14.5} {:>12.2}",
                    e.epoch,
                    rounds_this_epoch,
                    e.train_loss,
                    eval.overall.recall,
                    eval.overall.ndcg,
                    session.ledger().upload_bytes as f64 / (1024.0 * 1024.0),
                );
                rounds_this_epoch = 0;
            }
        }
    }

    let (best_epoch, best_ndcg) = session.history().best_ndcg().expect("evaluated epochs");
    println!(
        "\nstopped: {:?} — best NDCG@20 {best_ndcg:.5} at epoch {best_epoch}; \
         Eq.10 prefix violation after distillation: {:.2e}",
        session.stop_reason().expect("session finished"),
        session.server().eq10_violation()
    );
}
