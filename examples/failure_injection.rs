//! Robustness example (extension beyond the paper): how HeteFedRec
//! degrades when a fraction of client uploads is lost every round —
//! the cross-device reality the paper's protocol idealises away.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use hetefedrec::prelude::*;

fn main() {
    let seed = 21;
    let data = DatasetProfile::MovieLens.config_scaled(0.03).generate(seed);
    let split = SplitDataset::paper_split(&data, seed);

    println!(
        "{:>10} {:>10} {:>10} {:>9}",
        "drop prob", "Recall@20", "NDCG@20", "uploads"
    );
    for drop_prob in [0.0, 0.1, 0.3, 0.6] {
        let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
        cfg.epochs = 4;
        cfg.seed = seed;
        cfg.drop_prob = drop_prob;
        let result = run_experiment(&cfg, Strategy::HeteFedRec(Ablation::FULL), &split);
        println!(
            "{drop_prob:>10.1} {:>10.5} {:>10.5} {:>9}",
            result.final_eval.overall.recall, result.final_eval.overall.ndcg, result.comm.uploads,
        );
    }
    println!(
        "\nDropped clients still advance their private user embeddings, so\n\
         moderate loss rates degrade gracefully rather than catastrophically."
    );
}
