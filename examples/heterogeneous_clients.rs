//! Domain example: why model heterogeneity matters. Divides the clients
//! of a synthetic Anime-like dataset by data volume, trains the two
//! homogeneous extremes and HeteFedRec, and prints the per-group story
//! the paper's introduction motivates — small-data clients struggle with
//! large models while data-rich clients benefit from them.
//!
//! ```text
//! cargo run --release --example heterogeneous_clients
//! ```

use hetefedrec::prelude::*;

fn main() {
    let seed = 11;
    let data = DatasetProfile::Anime.config_scaled(0.03).generate(seed);
    let split = SplitDataset::paper_split(&data, seed);

    // Show the division the 5:3:2 ratio produces.
    let groups = ClientGroups::divide(&split, DivisionRatio::PAPER_DEFAULT);
    let sizes = groups.sizes();
    let (t_small, t_medium) = groups.thresholds;
    println!(
        "division 5:3:2 over {} clients -> |Us|={} (<= {} interactions), \
         |Um|={} (<= {}), |Ul|={}",
        split.num_users(),
        sizes[0],
        t_small,
        sizes[1],
        t_medium,
        sizes[2]
    );

    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::Anime);
    cfg.epochs = 5;
    cfg.seed = seed;
    cfg.local_epochs = 3; // pronounced local overfitting for small clients

    println!(
        "\n{:<22} {:>9} {:>9} {:>9} {:>9}",
        "strategy", "Us", "Um", "Ul", "overall"
    );
    for strategy in [
        Strategy::AllSmall,
        Strategy::AllLarge,
        Strategy::HeteFedRec(Ablation::FULL),
    ] {
        let result = run_experiment(&cfg, strategy, &split);
        let g = &result.final_eval.per_group;
        println!(
            "{:<22} {:>9.5} {:>9.5} {:>9.5} {:>9.5}",
            result.strategy, g[0].ndcg, g[1].ndcg, g[2].ndcg, result.final_eval.overall.ndcg
        );
    }

    println!(
        "\nReading the table: under 'All Large', the Us column suffers — \n\
         clients with little data cannot support a wide embedding — while \n\
         HeteFedRec serves each group a model matched to its data budget."
    );
}
