//! Domain example: end-to-end movie recommendation. Trains a federated
//! model, then produces top-10 recommendation lists for a few users and
//! checks them against the users' held-out test movies.
//!
//! ```text
//! cargo run --release --example movie_recommendation
//! ```

use hetefedrec::core::client::UserState;
use hetefedrec::core::server::ServerState;
use hetefedrec::models::ncf::NcfEngine;
use hetefedrec::prelude::*;

fn main() {
    let seed = 7;
    let data = DatasetProfile::MovieLens.config_scaled(0.04).generate(seed);
    let split = SplitDataset::paper_split(&data, seed);

    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
    cfg.epochs = 6;
    cfg.seed = seed;
    let strategy = Strategy::HeteFedRec(Ablation::FULL);
    let mut trainer = Trainer::new(cfg.clone(), strategy, split.clone());
    for _ in 0..cfg.epochs {
        trainer.run_epoch();
    }
    let eval = trainer.evaluate();
    println!("trained: overall NDCG@20 {:.5}\n", eval.overall.ndcg);

    // Produce top-10 lists for the three users with the most test data —
    // this is the serving path an application would run on-device.
    let mut users: Vec<usize> = (0..split.num_users()).collect();
    users.sort_by_key(|&u| std::cmp::Reverse(split.user(u).test.len()));

    for &u in users.iter().take(3) {
        let tier = trainer.model_groups().tier(u);
        let top = recommend(
            trainer.server(),
            trainer_user(&trainer, u),
            &split,
            &cfg,
            u,
            tier,
            10,
        );
        let test = &split.user(u).test;
        let hits: Vec<u32> = top
            .iter()
            .copied()
            .filter(|i| test.binary_search(i).is_ok())
            .collect();
        println!(
            "user {u} (tier {}, {} train / {} test movies)",
            tier.label(),
            split.user(u).train.len(),
            test.len()
        );
        println!("  top-10 recommendations: {top:?}");
        println!("  held-out hits in top-10: {hits:?}\n");
    }
}

/// Borrow a user's private state from the trainer.
fn trainer_user(trainer: &Trainer, u: usize) -> &UserState {
    trainer.user_state(u)
}

/// On-device serving: score every unseen movie with the user's tier model
/// and return the top-K item ids.
fn recommend(
    server: &ServerState,
    state: &UserState,
    split: &SplitDataset,
    cfg: &TrainConfig,
    user: usize,
    tier: Tier,
    k: usize,
) -> Vec<u32> {
    let dim = cfg.dims.dim(tier);
    let engine = NcfEngine::from_ffn(dim, server.theta(tier).clone());
    let mut ws = engine.workspace();
    let table = server.table(tier);
    let scores: Vec<f32> = (0..split.num_items())
        .map(|item| engine.forward(&state.emb, table.row_prefix(item, dim), &mut ws))
        .collect();
    hetefedrec::metrics::top_k_excluding(&scores, k, &split.user(user).train)
}
