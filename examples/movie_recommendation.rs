//! Domain example: end-to-end movie recommendation with checkpoint and
//! resume. Trains a federated model through the session API, checkpoints
//! mid-run to a file, finishes training, then restores the checkpoint
//! and proves the resumed run reaches a bit-identical evaluation before
//! producing top-10 recommendation lists.
//!
//! ```text
//! cargo run --release --example movie_recommendation
//! ```
//!
//! The checkpoint path defaults to
//! `target/ci-artifacts/movie_recommendation_checkpoint.json` and can be
//! overridden with the `HF_CHECKPOINT_PATH` environment variable (ci.sh
//! relies on the artefact landing there).

use hetefedrec::core::client::UserState;
use hetefedrec::core::server::ServerState;
use hetefedrec::models::ncf::NcfEngine;
use hetefedrec::prelude::*;

fn main() {
    let seed = 7;
    let make_split = || {
        let data = DatasetProfile::MovieLens.config_scaled(0.04).generate(seed);
        SplitDataset::paper_split(&data, seed)
    };
    let split = make_split();

    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
    cfg.epochs = 6;
    cfg.seed = seed;
    let strategy = Strategy::HeteFedRec(Ablation::FULL);
    let checkpoint_path = std::env::var("HF_CHECKPOINT_PATH")
        .unwrap_or_else(|_| "target/ci-artifacts/movie_recommendation_checkpoint.json".into());

    // --- Train, checkpointing mid-run ------------------------------------
    let checkpoint_epoch = 2;
    let mut session = SessionBuilder::new(cfg.clone(), strategy, split.clone())
        .build()
        .expect("valid configuration");
    while let Some(event) = session.step() {
        if let SessionEvent::Epoch(e) = event {
            let eval = e.eval.as_ref().expect("default cadence");
            println!(
                "epoch {}: train loss {:.4}  NDCG@20 {:.5}",
                e.epoch, e.train_loss, eval.overall.ndcg
            );
            if e.epoch == checkpoint_epoch {
                session
                    .write_checkpoint(&checkpoint_path)
                    .expect("checkpoint written");
                println!("  checkpointed epoch {} to {checkpoint_path}", e.epoch);
            }
        }
    }
    let trained_eval = session.final_eval().expect("final epoch evaluated").clone();
    println!("trained: overall NDCG@20 {:.5}", trained_eval.overall.ndcg);

    // --- Resume from the checkpoint and verify bit-identity --------------
    let mut resumed = SessionBuilder::from_checkpoint_file(&checkpoint_path, make_split())
        .expect("checkpoint parses")
        .build()
        .expect("checkpoint restores");
    println!(
        "resumed from epoch {} ({} rounds done); finishing the run...",
        checkpoint_epoch,
        resumed.rounds_completed()
    );
    resumed.run();
    let resumed_eval = resumed.final_eval().expect("final epoch evaluated").clone();
    assert_eq!(
        trained_eval.overall.ndcg.to_bits(),
        resumed_eval.overall.ndcg.to_bits(),
        "resumed run must be bit-identical to the uninterrupted one"
    );
    assert_eq!(
        trained_eval.overall.recall.to_bits(),
        resumed_eval.overall.recall.to_bits()
    );
    println!(
        "resume verified: NDCG@20 {:.5} == {:.5} (bit-identical)\n",
        resumed_eval.overall.ndcg, trained_eval.overall.ndcg
    );

    // --- Serve top-10 lists from the resumed session ----------------------
    // This is the on-device path an application would run; using the
    // *resumed* session proves restored state serves identically.
    let mut users: Vec<usize> = (0..split.num_users()).collect();
    users.sort_by_key(|&u| std::cmp::Reverse(split.user(u).test.len()));

    for &u in users.iter().take(3) {
        let tier = resumed.model_groups().tier(u);
        let top = recommend(
            resumed.server(),
            resumed.user_state(u),
            &split,
            &cfg,
            u,
            tier,
            10,
        );
        let test = &split.user(u).test;
        let hits: Vec<u32> = top
            .iter()
            .copied()
            .filter(|i| test.binary_search(i).is_ok())
            .collect();
        println!(
            "user {u} (tier {}, {} train / {} test movies)",
            tier.label(),
            split.user(u).train.len(),
            test.len()
        );
        println!("  top-10 recommendations: {top:?}");
        println!("  held-out hits in top-10: {hits:?}\n");
    }
}

/// On-device serving: score every unseen movie with the user's tier model
/// and return the top-K item ids.
fn recommend(
    server: &ServerState,
    state: &UserState,
    split: &SplitDataset,
    cfg: &TrainConfig,
    user: usize,
    tier: Tier,
    k: usize,
) -> Vec<u32> {
    let dim = cfg.dims.dim(tier);
    let engine = NcfEngine::from_ffn(dim, server.theta(tier).clone());
    let mut ws = engine.workspace();
    let table = server.table(tier);
    let scores: Vec<f32> = (0..split.num_items())
        .map(|item| engine.forward(&state.emb, table.row_prefix(item, dim), &mut ws))
        .collect();
    hetefedrec::metrics::top_k_excluding(&scores, k, &split.user(user).train)
}
