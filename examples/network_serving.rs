//! Domain example: from a trained session to a network deployment.
//!
//! Trains a small federated model, saves the compact binary artifact to
//! disk, reloads it the way a serving host would (`hf-serve` style: no
//! dataset, no checkpoint replay), serves it over a loopback TCP socket
//! with the micro-batching server, and proves the deployment contracts
//! end to end:
//!
//! 1. **Binary artifact round trip** — the artifact reloaded from disk
//!    re-encodes to the exact bytes that were written.
//! 2. **Served == in-process** — every ranking fetched through the
//!    socket (framing, queueing, micro-batching and all) is
//!    bit-identical to `Recommender::recommend_batch` on the same
//!    requests in process.
//! 3. **Graceful shutdown** — the wire-level `Shutdown` frame drains the
//!    server and `wait()` returns.
//!
//! ```text
//! cargo run --release --example network_serving
//! ```
//!
//! The artifact path defaults to `target/ci-artifacts/serving_model.hfa`
//! and can be overridden with the `HF_ARTIFACT_PATH` environment
//! variable (ci.sh greps this example's proof lines).

use hetefedrec::net::serve;
use hetefedrec::prelude::*;
use hetefedrec::serve::ExportArtifact;

fn main() {
    let seed = 11;
    let data = DatasetProfile::MovieLens.config_scaled(0.02).generate(seed);
    let split = SplitDataset::paper_split(&data, seed);

    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
    cfg.epochs = 2;
    cfg.seed = seed;
    let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone())
        .eval_every(0)
        .build()
        .expect("valid configuration");
    for epoch in 1..=2 {
        let loss = session.run_epoch();
        println!("epoch {epoch}: train loss {loss:.4}");
    }

    // --- Save the deployment artifact, reload it like a serving host ------
    let artifact_path = std::env::var("HF_ARTIFACT_PATH")
        .unwrap_or_else(|_| "target/ci-artifacts/serving_model.hfa".into());
    let artifact = session.export_artifact();
    let written = artifact.to_bytes();
    artifact.save_file(&artifact_path).expect("artifact saved");
    let reloaded = ModelArtifact::load_file(&artifact_path).expect("artifact reloads");
    assert_eq!(
        written,
        reloaded.to_bytes(),
        "reload must reproduce the written bytes exactly"
    );
    println!(
        "artifact round trip: {} bytes at {artifact_path} re-encode bit-identically \
         ({} users, {} items)",
        written.len(),
        reloaded.num_users(),
        reloaded.num_items()
    );

    // --- Serve the reloaded artifact over TCP ------------------------------
    // One recommender answers in process (the reference), an identically
    // configured one answers behind the socket.
    let reference = RecommenderBuilder::new(artifact)
        .default_k(10)
        .build()
        .expect("valid serving configuration");
    let served = RecommenderBuilder::new(reloaded)
        .default_k(10)
        .build()
        .expect("valid serving configuration");
    let handle = serve(served, "127.0.0.1:0", ServerConfig::default()).expect("loopback server");
    println!("serving on {}", handle.local_addr());

    // The full wire-expressible request vocabulary, plus cold-start ids.
    let num_users = split.num_users();
    let mut requests = Vec::new();
    for user in (0..num_users).step_by(7) {
        requests.push(RecommendRequest::new(user));
        requests.push(RecommendRequest::new(user).with_k(5).exclude([3u32, 9]));
        requests.push(
            RecommendRequest::new(user)
                .keep_seen()
                .with_min_popularity(2),
        );
    }
    requests.push(RecommendRequest::new(num_users + 1)); // unknown → fallback
    let expected = reference.recommend_batch(&requests);

    let mut client = Client::connect(handle.local_addr()).expect("client connects");
    client.ping().expect("server answers ping");
    let mut compared = 0usize;
    for (request, expect) in requests.iter().zip(&expected) {
        let answer = client.recommend(request).expect("served");
        assert_eq!(answer.user, expect.user);
        assert_eq!(answer.items.len(), expect.items.len());
        for (a, b) in answer.items.iter().zip(&expect.items) {
            assert_eq!(a.item, b.item, "user {}", request.user);
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "user {}: socket must not change a single bit",
                request.user
            );
        }
        compared += 1;
    }
    println!("served == in-process ({compared} responses bit-identical)");

    let top = client.recommend(&RecommendRequest::new(0)).expect("served");
    let ids: Vec<u32> = top.items.iter().map(|it| it.item).collect();
    println!(
        "user 0 over the wire (tier {}): top-10 {ids:?}",
        top.tier.label()
    );

    // --- Graceful shutdown over the wire ------------------------------------
    client.shutdown_server().expect("shutdown frame sent");
    handle.wait();
    println!("server drained and stopped");
}
