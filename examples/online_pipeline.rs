//! Domain example: keeping a deployed recommender fresh.
//!
//! A recommender in production faces interactions its artifact has
//! never seen. This example closes the loop with the `pipeline` crate:
//!
//! 1. **Streaming ingest** — a deterministic `ReplayStream` carves a
//!    held-out "future" (20% of every user's interactions plus two
//!    entirely new users) from the dataset and replays it into the
//!    running session on its simulated clock.
//! 2. **Incremental export** — the `PipelineDriver` trains between
//!    stream polls and writes versioned `artifact-v{N}.hfab` files.
//! 3. **Hot swap** — a TCP server starts on generation 1; one on-wire
//!    `Reload` swaps the newest generation in with traffic running,
//!    and every response names the generation that ranked it.
//! 4. **Freshness payoff** — `drift_report` replays the held-out
//!    events against the stale and fresh artifacts: NDCG delta and
//!    rank displacement quantify what the swap bought.
//!
//! ```text
//! cargo run --release --example online_pipeline
//! ```
//!
//! Artifacts go to `target/ci-artifacts/online_pipeline/` (override
//! with `HF_PIPELINE_DIR`; ci.sh greps this example's proof lines).

use hetefedrec::net::serve_slot;
use hetefedrec::prelude::*;
use std::path::PathBuf;

fn main() {
    let seed = 17;
    let dir = PathBuf::from(
        std::env::var("HF_PIPELINE_DIR")
            .unwrap_or_else(|_| "target/ci-artifacts/online_pipeline".into()),
    );
    let _ = std::fs::remove_dir_all(&dir);

    // --- 1. Carve the stream, train on the pre-cutoff base -----------------
    let data = DatasetProfile::MovieLens.config_scaled(0.02).generate(seed);
    let replay = ReplayConfig {
        item_frac: 0.2,
        new_users: 2,
        start: 1,
        horizon: 6,
    };
    let (base, stream) = ReplayStream::replay(&data, &replay, seed);
    println!(
        "stream: {} held-out events over {} base users (+{} users arriving mid-stream)",
        stream.events().len(),
        base.num_users(),
        replay.new_users
    );
    let held_out = stream.events().to_vec();
    let split = SplitDataset::paper_split(&base, seed);
    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
    cfg.epochs = 4;
    cfg.seed = seed;
    let session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
        .eval_every(0)
        .build()
        .expect("valid configuration");

    // --- 2. The pipeline: poll -> ingest -> train -> export ----------------
    let mut driver = PipelineDriver::new(
        session,
        stream,
        PipelineConfig {
            rounds_per_cycle: 1,
            export_every: 2,
            artifact_dir: dir.clone(),
        },
    )
    .expect("initial export");

    // --- 3. Serve generation 1 while the pipeline runs ---------------------
    let gen1 = RecommenderBuilder::new(
        ModelArtifact::load_file(hetefedrec::pipeline::artifact_path(&dir, 1))
            .expect("generation 1 on disk"),
    )
    .default_k(10)
    .build()
    .expect("valid serving configuration");
    let reload_dir = dir.clone();
    let reload: ReloadFn = Box::new(move || {
        let (version, path) = latest_artifact(&reload_dir)
            .map_err(|e| format!("cannot scan artifacts: {e}"))?
            .ok_or("no artifact yet")?;
        let artifact =
            ModelArtifact::load_file(&path).map_err(|e| format!("cannot load v{version}: {e}"))?;
        RecommenderBuilder::new(artifact)
            .default_k(10)
            .build()
            .map_err(|e| e.to_string())
    });
    let slot = ArtifactSlot::new(
        RecommenderBuilder::new(gen1.artifact().clone())
            .default_k(10)
            .build()
            .expect("valid serving configuration"),
    );
    let handle = serve_slot(slot, Some(reload), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback server");
    println!("serving generation 1 on {}", handle.local_addr());
    let mut client = Client::connect(handle.local_addr()).expect("client connects");

    let probe = |client: &mut Client, id: u64| -> WireResponse {
        let request = RecommendRequest::new(3).with_k(10);
        let wire = WireRequest::try_from_request(id, &request).expect("wire-expressible");
        client.recommend_wire(wire).expect("served")
    };
    let before = probe(&mut client, 1);
    assert_eq!(before.version, 1, "pre-swap traffic is attributed to v1");

    for report in driver.run().expect("pipeline runs") {
        if let Some((version, _)) = &report.exported {
            println!(
                "cycle {:>2}: ingested {:>3} events (+{} users) -> exported generation {version}",
                report.cycle,
                report.ingest.appended + report.ingest.admitted,
                report.ingest.admitted
            );
        }
    }
    let generations = driver.version();
    let (session, _) = driver.into_parts();
    println!(
        "pipeline done: {} events ingested, {} generations on disk",
        session.ingested_events(),
        generations
    );

    // --- 4. Hot swap over the wire, attribution intact ----------------------
    let slot_version = client.reload().expect("reload acknowledged");
    let after = probe(&mut client, 2);
    assert_eq!(
        after.version, slot_version,
        "post-swap traffic names the new slot"
    );
    println!(
        "hot swap: slot v{} -> v{} (serving artifact-v{generations}.hfab), \
         responses re-stamped mid-connection",
        before.version, after.version
    );

    // --- 5. What did freshness buy? -----------------------------------------
    let fresh = RecommenderBuilder::new(
        ModelArtifact::load_file(hetefedrec::pipeline::artifact_path(&dir, generations))
            .expect("final generation on disk"),
    )
    .default_k(10)
    .build()
    .expect("valid serving configuration");
    let drift = drift_report(&gen1, &fresh, &held_out, 10);
    println!(
        "freshness: stale NDCG@10 {:.5} -> fresh {:.5} (delta {:+.5}), \
         mean rank displacement {:.1} over {} events",
        drift.stale_ndcg,
        drift.fresh_ndcg,
        drift.ndcg_delta,
        drift.mean_rank_displacement,
        drift.events
    );

    client.shutdown_server().expect("shutdown frame sent");
    handle.wait();
    println!("server drained and stopped");
}
