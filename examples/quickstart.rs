//! Quickstart: train HeteFedRec on a small synthetic MovieLens-like
//! dataset and print the paper's headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hetefedrec::prelude::*;

fn main() {
    // 1. Data: a 2%-scale synthetic MovieLens-1M (same distributional
    //    shape as the paper's Table I row), split 80/20 with 10% of train
    //    reserved for validation.
    let seed = 42;
    let data = DatasetProfile::MovieLens.config_scaled(0.05).generate(seed);
    let split = SplitDataset::paper_split(&data, seed);
    println!(
        "dataset: {} users, {} items, {} interactions",
        data.num_users(),
        data.num_items(),
        data.num_interactions()
    );

    // 2. Configuration: the paper's §V-D defaults — tiers {8,16,32},
    //    division 5:3:2, 256 clients per round, 1:4 negatives.
    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
    cfg.epochs = 5;
    cfg.seed = seed;

    // 3. Train the full HeteFedRec (unified dual-task learning +
    //    decorrelation regularisation + ensemble self-distillation).
    let mut trainer = Trainer::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split);
    for epoch in 1..=trainer.cfg().epochs {
        let loss = trainer.run_epoch();
        let eval = trainer.evaluate();
        println!(
            "epoch {epoch}: train loss {loss:.4}  Recall@20 {:.5}  NDCG@20 {:.5}",
            eval.overall.recall, eval.overall.ndcg
        );
    }

    // 4. Per-group breakdown (the paper's Fig. 6 view).
    let eval = trainer.evaluate();
    for (tier, group) in Tier::ALL.iter().zip(eval.per_group.iter()) {
        println!(
            "group {:<3} ({} users): NDCG@20 {:.5}",
            tier.label(),
            group.users,
            group.ndcg
        );
    }
    println!(
        "communication: {:.1} MiB down, {:.1} MiB up over {} uploads",
        trainer.ledger().download_bytes as f64 / (1024.0 * 1024.0),
        trainer.ledger().upload_bytes as f64 / (1024.0 * 1024.0),
        trainer.ledger().uploads
    );
}
