//! Quickstart: train HeteFedRec on a small synthetic MovieLens-like
//! dataset through the session API and print the paper's headline
//! metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hetefedrec::prelude::*;

fn main() {
    // 1. Data: a 5%-scale synthetic MovieLens-1M (same distributional
    //    shape as the paper's Table I row), split 80/20 with 10% of train
    //    reserved for validation.
    let seed = 42;
    let data = DatasetProfile::MovieLens.config_scaled(0.05).generate(seed);
    let split = SplitDataset::paper_split(&data, seed);
    println!(
        "dataset: {} users, {} items, {} interactions",
        data.num_users(),
        data.num_items(),
        data.num_interactions()
    );

    // 2. Configuration: the paper's §V-D defaults — tiers {8,16,32},
    //    division 5:3:2, 256 clients per round, 1:4 negatives.
    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
    cfg.epochs = 5;
    cfg.seed = seed;

    // 3. Build the session (configuration is validated here, not deep in
    //    the run) and drive it by typed epoch events.
    let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
        .build()
        .expect("valid configuration");
    for event in session.events() {
        if let SessionEvent::Epoch(e) = event {
            let eval = e
                .eval
                .as_ref()
                .expect("default cadence evaluates every epoch");
            println!(
                "epoch {}: train loss {:.4}  Recall@20 {:.5}  NDCG@20 {:.5}",
                e.epoch, e.train_loss, eval.overall.recall, eval.overall.ndcg
            );
        }
    }

    // 4. Per-group breakdown (the paper's Fig. 6 view).
    let eval = session.final_eval().expect("final epoch evaluated").clone();
    for (tier, group) in Tier::ALL.iter().zip(eval.per_group.iter()) {
        println!(
            "group {:<3} ({} users): NDCG@20 {:.5}",
            tier.label(),
            group.users,
            group.ndcg
        );
    }
    println!(
        "communication: {:.1} MiB down, {:.1} MiB up over {} uploads",
        session.ledger().download_bytes as f64 / (1024.0 * 1024.0),
        session.ledger().upload_bytes as f64 / (1024.0 * 1024.0),
        session.ledger().uploads
    );
}
