//! Domain example: training with the secure-aggregation upload path on.
//!
//! Runs the same tiny federation twice — once plaintext, once with
//! pairwise-masked uploads and injected dropout — and proves the two
//! protocol contracts end to end:
//!
//! 1. **Masking is lossless in the ring** — the server's unmasked u64
//!    aggregate equals the plaintext quantized sum of the survivors
//!    bit-for-bit, every round (the engine hard-asserts it; the round
//!    reports record it).
//! 2. **Dropout recovery works** — committed clients that vanish
//!    mid-round leave orphaned masks, survivors reveal the escrowed
//!    Shamir shares, and the aggregate still verifies.
//!
//! ```text
//! cargo run --release --example secure_aggregation
//! ```
//!
//! ci.sh greps this example's two proof lines.

use hetefedrec::prelude::*;

fn main() {
    let seed = 11;
    let data = SyntheticConfig::tiny().generate(seed);
    let split = SplitDataset::paper_split(&data, seed);

    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
    cfg.dims = TierDims::new(4, 8, 16);
    cfg.epochs = 2;
    cfg.clients_per_round = 16;
    cfg.eval_k = 10;
    cfg.kd.items = 16;
    cfg.seed = seed;
    // Injected upload losses: committed group members that never deliver.
    cfg.drop_prob = 0.1;
    cfg.secagg = SecAggConfig {
        enabled: true,
        scale_bits: 16,
    };

    let mut session = SessionBuilder::new(
        cfg.clone(),
        Strategy::HeteFedRec(Ablation::FULL),
        split.clone(),
    )
    .build()
    .expect("valid masked configuration");

    let mut rounds = 0usize;
    let mut participants = 0usize;
    let mut dropped = 0usize;
    let mut recovered = 0usize;
    let mut masked_bytes = 0u64;
    let mut setup_bytes = 0u64;
    let mut all_verified = true;
    while let Some(event) = session.step() {
        if let SessionEvent::Round(r) = event {
            let s = r.secagg.expect("masked rounds report secagg stats");
            rounds += 1;
            participants += s.participants;
            dropped += s.dropped;
            recovered += s.recovered;
            masked_bytes += s.masked_bytes;
            setup_bytes += s.setup_bytes;
            all_verified &= s.verified;
        }
    }
    let eval = session.final_eval().expect("final epoch evaluated");
    println!(
        "masked run: {rounds} rounds, {participants} committed uploads, \
         {masked_bytes} masked bytes + {setup_bytes} setup bytes, NDCG@10 {:.4}",
        eval.overall.ndcg
    );
    if let Some((mask_nanos, recovery_nanos)) = session.secagg_timing() {
        println!(
            "protocol time: {:.2}ms masking, {:.2}ms recovery",
            mask_nanos as f64 / 1e6,
            recovery_nanos as f64 / 1e6
        );
    }

    // Plaintext twin for the overhead comparison (identical schedule:
    // secagg draws from its own RNG stream, so flipping it off perturbs
    // nothing else).
    let mut plain_cfg = cfg;
    plain_cfg.secagg = SecAggConfig::default();
    let mut plain = SessionBuilder::new(plain_cfg, Strategy::HeteFedRec(Ablation::FULL), split)
        .build()
        .expect("valid plaintext configuration");
    let mut plain_upload = 0u64;
    while let Some(event) = plain.step() {
        if let SessionEvent::Round(r) = event {
            plain_upload += r.upload_bytes;
        }
    }
    println!(
        "upload overhead: {masked_bytes} masked vs {plain_upload} plaintext bytes \
         ({:.1}x, + {setup_bytes} setup)",
        masked_bytes as f64 / plain_upload as f64
    );

    // Proof line 1: every round's unmasked ring aggregate matched the
    // plaintext quantized reference (the engine asserts each one; a
    // below-threshold group would have cleared the flag instead).
    assert!(all_verified && rounds > 0);
    println!("masked aggregate == plaintext quantized aggregate");

    // Proof line 2: dropouts actually happened and their orphaned masks
    // were reconstructed from escrowed shares.
    assert!(dropped > 0, "no dropouts were injected");
    assert!(recovered > 0, "no masks were recovered");
    println!("recovery under injected dropout verified");
}
