//! Domain example: from a trained session to a serving deployment.
//!
//! Trains a small federated model, exports an immutable `ModelArtifact`,
//! and proves the two deployment contracts end to end:
//!
//! 1. **Serving matches eval** — top-K metrics recomputed through the
//!    batched `Recommender` are bit-identical to the offline
//!    `Session::evaluate()` numbers (one shared scorer).
//! 2. **Artifact reload** — the session checkpoint written to disk
//!    rebuilds (via `ModelArtifact::from_checkpoint_file`) a recommender
//!    whose top-K lists are bit-identical to the directly exported one.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! The checkpoint path defaults to
//! `target/ci-artifacts/serving_checkpoint.json` and can be overridden
//! with the `HF_SERVE_CHECKPOINT_PATH` environment variable (ci.sh greps
//! this example's proof lines).

use hetefedrec::metrics::eval::{Evaluator, GroupedEval};
use hetefedrec::prelude::*;

fn main() {
    let seed = 11;
    let make_split = || {
        let data = DatasetProfile::MovieLens.config_scaled(0.02).generate(seed);
        SplitDataset::paper_split(&data, seed)
    };
    let split = make_split();

    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
    cfg.epochs = 3;
    cfg.seed = seed;
    let eval_k = cfg.eval_k;
    let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone())
        .eval_every(0)
        .build()
        .expect("valid configuration");
    for epoch in 1..=3 {
        let loss = session.run_epoch();
        println!("epoch {epoch}: train loss {loss:.4}");
    }

    // --- Export and serve --------------------------------------------------
    let recommender = RecommenderBuilder::new(session.export_artifact())
        .default_k(10)
        .threads(2)
        .build()
        .expect("valid serving configuration");
    println!(
        "exported artifact v{}: {} users, {} items\n",
        recommender.artifact().version(),
        recommender.artifact().num_users(),
        recommender.artifact().num_items()
    );

    for user in 0..3usize {
        let top = recommender.recommend(&RecommendRequest::new(user));
        let ids: Vec<u32> = top.items.iter().map(|it| it.item).collect();
        println!("user {user} (tier {}): top-10 {ids:?}", top.tier.label());
    }

    // --- Proof 1: serving matches eval ------------------------------------
    // Recompute the offline metrics *through the serving path*: for every
    // user with held-out items, rank with the recommender at the eval
    // cutoff (history masked, like the protocol) and aggregate in the
    // same data-group bucketing evaluate() uses.
    let offline = session.evaluate();
    let evaluator = Evaluator { k: eval_k };
    let mut grouped = GroupedEval::new(3);
    let requests: Vec<RecommendRequest> = (0..split.num_users())
        .map(|u| RecommendRequest::new(u).with_k(eval_k))
        .collect();
    let responses = recommender.recommend_batch(&requests);
    for (user, response) in responses.iter().enumerate() {
        let user_split = split.user(user);
        if user_split.test.is_empty() {
            continue;
        }
        let ranked: Vec<u32> = response.items.iter().map(|it| it.item).collect();
        let eval = evaluator
            .evaluate_ranked(&ranked, &user_split.test)
            .expect("non-empty test set");
        grouped.push(session.data_groups().tier(user).index(), eval);
    }
    let served = grouped.overall();
    assert_eq!(
        served.ndcg.to_bits(),
        offline.overall.ndcg.to_bits(),
        "served NDCG must equal offline eval bit-for-bit"
    );
    assert_eq!(served.recall.to_bits(), offline.overall.recall.to_bits());
    assert_eq!(served.users, offline.overall.users);
    println!(
        "\nserving matches eval: NDCG@{eval_k} {:.5} == {:.5} (bit-identical, {} users)",
        served.ndcg, offline.overall.ndcg, served.users
    );

    // --- Proof 2: checkpoint → artifact reload -----------------------------
    let checkpoint_path = std::env::var("HF_SERVE_CHECKPOINT_PATH")
        .unwrap_or_else(|_| "target/ci-artifacts/serving_checkpoint.json".into());
    session
        .write_checkpoint(&checkpoint_path)
        .expect("checkpoint written");
    let reloaded = ModelArtifact::from_checkpoint_file(&checkpoint_path, make_split())
        .expect("checkpoint rebuilds the artifact");
    let from_disk = RecommenderBuilder::new(reloaded)
        .default_k(10)
        .threads(2)
        .build()
        .expect("valid serving configuration");
    for user in 0..split.num_users() {
        let a = recommender.recommend(&RecommendRequest::new(user));
        let b = from_disk.recommend(&RecommendRequest::new(user));
        assert_eq!(a.items.len(), b.items.len(), "user {user}");
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.item, y.item, "user {user}");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "user {user}");
        }
    }
    println!(
        "artifact reload verified: {} users serve bit-identical top-K lists from {checkpoint_path}",
        split.num_users()
    );
}
