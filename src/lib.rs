//! # hetefedrec
//!
//! Rust reproduction of **HeteFedRec: Federated Recommender Systems with
//! Model Heterogeneity** (Yuan et al., ICDE 2024, arXiv:2307.12810).
//!
//! This facade crate re-exports the whole workspace so applications need a
//! single dependency:
//!
//! ```
//! use hetefedrec::prelude::*;
//!
//! // Generate a small synthetic dataset calibrated to MovieLens-1M.
//! let data = DatasetProfile::MovieLens.config_scaled(0.02).generate(42);
//! let split = SplitDataset::paper_split(&data, 42);
//!
//! // Train HeteFedRec for one epoch and evaluate.
//! let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
//! cfg.epochs = 1;
//! let mut trainer = Trainer::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split);
//! trainer.run_epoch();
//! let eval = trainer.evaluate();
//! assert!(eval.overall.ndcg.is_finite());
//! ```
//!
//! Crate map (see `DESIGN.md` for the full inventory):
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`tensor`] | dense linear algebra, RNG streams, Adam, eigen-solver |
//! | [`dataset`] | synthetic profiles, splits, negative sampling, grouping |
//! | [`models`] | NCF / LightGCN with manual backprop |
//! | [`fedsim`] | rounds, transport, communication accounting, faults |
//! | [`metrics`] | Recall@K / NDCG@K and the ranking evaluator |
//! | [`core`] | HeteFedRec itself: UDL, DDR, RESKD, baselines, trainer |

pub use hetefedrec_core as core;
pub use hf_dataset as dataset;
pub use hf_fedsim as fedsim;
pub use hf_metrics as metrics;
pub use hf_models as models;
pub use hf_tensor as tensor;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use hetefedrec_core::{
        run_experiment, Ablation, EvalOutput, ExperimentResult, History, ItemAggNorm, KdConfig,
        ServerOpt, Strategy, TierDims, TrainConfig, Trainer,
    };
    pub use hf_dataset::{
        ClientGroups, DatasetProfile, DivisionRatio, ImplicitDataset, SplitDataset,
        SyntheticConfig, Tier,
    };
    pub use hf_metrics::eval::EvalResult;
    pub use hf_models::ModelKind;
}
