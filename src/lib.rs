//! # hetefedrec
//!
//! Rust reproduction of **HeteFedRec: Federated Recommender Systems with
//! Model Heterogeneity** (Yuan et al., ICDE 2024, arXiv:2307.12810).
//!
//! This facade crate re-exports the whole workspace so applications need a
//! single dependency:
//!
//! ```
//! use hetefedrec::prelude::*;
//!
//! // Generate a small synthetic dataset calibrated to MovieLens-1M.
//! let data = DatasetProfile::MovieLens.config_scaled(0.02).generate(42);
//! let split = SplitDataset::paper_split(&data, 42);
//!
//! // Train HeteFedRec for one epoch through the session API, observing
//! // every round, then checkpoint and resume.
//! let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
//! cfg.epochs = 1;
//! let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone())
//!     .build()
//!     .expect("valid configuration");
//! let mut rounds = 0;
//! for event in session.events() {
//!     if let SessionEvent::Round(_) = event {
//!         rounds += 1;
//!     }
//! }
//! assert!(rounds > 0);
//! let eval = session.final_eval().expect("final epoch evaluated");
//! assert!(eval.overall.ndcg.is_finite());
//!
//! // A restored checkpoint carries the exact same state.
//! let resumed = Session::restore(&session.checkpoint(), split).expect("restores");
//! assert_eq!(
//!     resumed.final_eval().unwrap().overall.ndcg,
//!     eval.overall.ndcg
//! );
//!
//! // Export an immutable artifact and answer top-10 queries from it.
//! let recommender = RecommenderBuilder::new(session.export_artifact())
//!     .default_k(10)
//!     .build()
//!     .expect("valid serving configuration");
//! let top = recommender.recommend(&RecommendRequest::new(0));
//! assert!(top.items.len() <= 10 && !top.cold_start);
//! ```
//!
//! Crate map (see `DESIGN.md` for the full inventory):
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`tensor`] | dense linear algebra, RNG streams, Adam, eigen-solver, JSON read/write |
//! | [`dataset`] | synthetic profiles, splits, negative sampling, grouping |
//! | [`models`] | NCF / LightGCN with manual backprop |
//! | [`fedsim`] | event scheduler, rounds, transport, communication accounting, faults/churn |
//! | [`metrics`] | Recall@K / NDCG@K and the ranking evaluator |
//! | [`core`] | HeteFedRec itself: UDL, DDR, RESKD, baselines, sessions |
//! | [`secagg`] | pairwise-masked secure aggregation: fixed-point ring quantization, mask PRG, Shamir escrow, dropout recovery |
//! | [`serve`] | model artifacts (eager or lazily loaded), synthetic capacity profiles, and the batched top-K `Recommender` |
//! | [`net`] | framed TCP serving: micro-batching server, client, load generator |
//! | [`pipeline`] | online loop: streaming ingest, versioned incremental export, hot swap, drift |

pub use hetefedrec_core as core;
pub use hf_dataset as dataset;
pub use hf_fedsim as fedsim;
pub use hf_metrics as metrics;
pub use hf_models as models;
pub use hf_net as net;
pub use hf_pipeline as pipeline;
pub use hf_secagg as secagg;
pub use hf_serve as serve;
pub use hf_tensor as tensor;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use hetefedrec_core::{
        run_experiment, Ablation, AsyncConfig, AsyncRoundStats, ConfigError, EpochRecord,
        EpochReport, EvalOutput, ExperimentResult, History, ItemAggNorm, KdConfig, Mode,
        RoundReport, SecAggConfig, SecAggRoundStats, ServerOpt, Session, SessionBuilder,
        SessionError, SessionEvent, StopReason, Strategy, TierDims, TrainConfig,
    };
    pub use hf_dataset::{
        ClientGroups, DatasetProfile, DivisionRatio, ImplicitDataset, SplitDataset,
        SyntheticConfig, SyntheticProfile, Tier,
    };
    pub use hf_fedsim::events::LatencyProfile;
    pub use hf_fedsim::faults::ChurnProfile;
    pub use hf_metrics::eval::EvalResult;
    pub use hf_models::ModelKind;
    pub use hf_net::{
        Client, Frame, LoadGen, LoadReport, NetError, ReloadFn, ServerConfig, ServerHandle,
        WireRequest, WireResponse,
    };
    pub use hf_pipeline::{
        drift_report, latest_artifact, DriftReport, InteractionStream, PipelineConfig,
        PipelineDriver, ReplayConfig, ReplayStream, StreamEvent,
    };
    pub use hf_serve::{
        ArtifactSlot, ExportArtifact, ItemHalfMode, LazyConfig, ModelArtifact, RecommendRequest,
        RecommendResponse, Recommender, RecommenderBuilder, ScoredItem, ServeError, SynthStats,
        UserRef,
    };
}
