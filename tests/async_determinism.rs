//! Acceptance tests for the event-driven asynchronous engine, through the
//! public facade. The determinism bar is *byte-equal checkpoints*: an
//! async run under heavy-tailed latency and flap-prone churn must produce
//! the identical final checkpoint document across 1/2/8 worker threads,
//! and a run interrupted mid-stream and resumed (at a different thread
//! count) must land on that same document. CI greps this test's output
//! for the `async resume verified` proof line.

use hetefedrec::prelude::*;

fn tiny_split(seed: u64) -> SplitDataset {
    let data = SyntheticConfig::tiny().generate(seed);
    SplitDataset::paper_split(&data, seed)
}

fn async_cfg(model: ModelKind) -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(model, DatasetProfile::MovieLens);
    cfg.dims = TierDims::new(4, 8, 16);
    cfg.epochs = 3;
    cfg.eval_k = 10;
    cfg.kd.items = 16;
    cfg.seed = 11;
    cfg.threads = 1;
    cfg.mode = Mode::Async;
    cfg.async_cfg = AsyncConfig {
        staleness_beta: 0.5,
        buffer: 6,
        concurrency: 24,
        adaptive_beta: false,
    };
    cfg.latency = LatencyProfile::LogNormal {
        median: 3.0,
        sigma: 0.8,
    };
    cfg.churn = ChurnProfile::Flappy {
        offline_prob: 0.25,
        period: 30,
    };
    cfg
}

fn finished_checkpoint(mut cfg: TrainConfig, threads: usize, split: &SplitDataset) -> String {
    cfg.threads = threads;
    let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone())
        .build()
        .expect("valid async configuration");
    session.run();
    assert!(session.is_finished());
    session.checkpoint()
}

/// Pins the config's `threads` field — the one execution-resource knob a
/// checkpoint records — so documents from runs at different worker counts
/// can be compared byte-for-byte. Everything else must already agree.
fn normalize_threads(doc: &str) -> String {
    let start = doc.find("\"threads\":").expect("threads field present");
    let end = start + doc[start..].find(',').expect("field terminator");
    format!("{}\"threads\":0{}", &doc[..start], &doc[end..])
}

#[test]
fn async_runs_are_byte_identical_across_thread_counts() {
    for model in [ModelKind::Ncf, ModelKind::LightGcn] {
        let split = tiny_split(9);
        let cfg = async_cfg(model);
        let reference = normalize_threads(&finished_checkpoint(cfg.clone(), 1, &split));
        for threads in [2, 8] {
            let got = normalize_threads(&finished_checkpoint(cfg.clone(), threads, &split));
            assert_eq!(
                reference, got,
                "{model:?}: async checkpoint diverges at {threads} threads"
            );
        }
    }
}

#[test]
fn async_mid_stream_resume_lands_on_the_same_bytes() {
    let split = tiny_split(9);
    let cfg = async_cfg(ModelKind::Ncf);

    // Uninterrupted reference at 1 thread.
    let reference = finished_checkpoint(cfg.clone(), 1, &split);

    // Interrupt mid-stream (mid-epoch: a prime number of steps), resume
    // from the serialized document at a different thread count, and run
    // to completion.
    let mut first = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone())
        .build()
        .expect("valid async configuration");
    for _ in 0..7 {
        first.step();
    }
    assert!(!first.is_finished(), "interrupted run already finished");
    let mid = first.checkpoint();

    let mut resumed = SessionBuilder::from_checkpoint(&mid, split.clone())
        .expect("mid-stream document parses")
        .threads(4)
        .build()
        .expect("mid-stream document restores");
    resumed.run();
    assert_eq!(
        normalize_threads(&reference),
        normalize_threads(&resumed.checkpoint()),
        "resumed run diverges from the uninterrupted reference"
    );
    println!("async resume verified");
}

#[test]
fn v1_era_sync_checkpoints_restore_end_to_end() {
    // A v2 sync document stripped of every v2 field is exactly what a v1
    // build wrote; the facade must restore it and finish the run with the
    // same evaluation the unstripped document produces.
    let split = tiny_split(9);
    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
    cfg.dims = TierDims::new(4, 8, 16);
    cfg.epochs = 2;
    cfg.eval_k = 10;
    cfg.kd.items = 16;
    cfg.seed = 11;
    let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone())
        .build()
        .expect("valid configuration");
    for _ in 0..3 {
        session.step();
    }
    let v2 = session.checkpoint();

    // Strip the v2 config block and the two v2 session fields, then
    // downgrade the version stamp — string surgery is safe because the
    // writer keeps the v2 additions contiguous.
    let cfg_start = v2.find(",\"mode\":").expect("mode field present");
    let cfg_end = v2.find(",\"strategy\"").expect("strategy field present");
    let mut v1 = v2.clone();
    // The stripped span ends with the cfg object's closing brace.
    v1.replace_range(cfg_start..cfg_end, "}");
    let clock_start = v1.find(",\"clock\":").expect("clock field present");
    let clock_end = v1.find(",\"ledger\"").expect("ledger field present");
    v1.replace_range(clock_start..clock_end, "");
    let v1 = v1.replacen("\"version\":2", "\"version\":1", 1);
    assert!(!v1.contains("event_scheduler"));

    let mut from_v1 = Session::restore(&v1, split.clone()).expect("v1 document restores");
    let mut from_v2 = Session::restore(&v2, split).expect("v2 document restores");
    from_v1.run();
    from_v2.run();
    let (a, b) = (
        from_v1.final_eval().expect("evaluated"),
        from_v2.final_eval().expect("evaluated"),
    );
    assert_eq!(a.overall.ndcg.to_bits(), b.overall.ndcg.to_bits());
    // A v1 document carries no clock, so the restored run re-counts ticks
    // from zero; everything else must agree byte-for-byte.
    assert_eq!(
        normalize_clock(&from_v1.checkpoint()),
        normalize_clock(&from_v2.checkpoint())
    );
}

/// Pins the session-level logical clock (the first `clock` field — the
/// config block has none and the event scheduler's copy comes later).
fn normalize_clock(doc: &str) -> String {
    let start = doc.find("\"clock\":").expect("clock field present");
    let end = start + doc[start..].find(',').expect("field terminator");
    format!("{}\"clock\":0{}", &doc[..start], &doc[end..])
}
