//! Integration coverage for checkpoint/resume through the public facade:
//! a run interrupted at epoch k and restored must be bit-identical to an
//! uninterrupted run with the same seed — including across differing
//! `threads` values and through the filesystem.

use hetefedrec::prelude::*;

fn tiny_split(seed: u64) -> SplitDataset {
    let data = SyntheticConfig::tiny().generate(seed);
    SplitDataset::paper_split(&data, seed)
}

fn tiny_cfg(model: ModelKind) -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(model, DatasetProfile::MovieLens);
    cfg.dims = TierDims::new(4, 8, 16);
    cfg.epochs = 4;
    cfg.clients_per_round = 32;
    cfg.eval_k = 10;
    cfg.kd.items = 16;
    cfg.threads = 1;
    cfg.seed = 5;
    cfg
}

fn assert_evals_bit_identical(a: &EvalOutput, b: &EvalOutput) {
    assert_eq!(a.overall.ndcg.to_bits(), b.overall.ndcg.to_bits());
    assert_eq!(a.overall.recall.to_bits(), b.overall.recall.to_bits());
    assert_eq!(a.overall.hit_rate.to_bits(), b.overall.hit_rate.to_bits());
    assert_eq!(a.overall.precision.to_bits(), b.overall.precision.to_bits());
    assert_eq!(a.overall.mrr.to_bits(), b.overall.mrr.to_bits());
    assert_eq!(a.overall.users, b.overall.users);
    for (ga, gb) in a.per_group.iter().zip(&b.per_group) {
        assert_eq!(ga.ndcg.to_bits(), gb.ndcg.to_bits());
        assert_eq!(ga.recall.to_bits(), gb.recall.to_bits());
        assert_eq!(ga.users, gb.users);
    }
}

/// Runs uninterrupted; runs again checkpointing after `checkpoint_epoch`
/// epochs and discarding the original; restores with `resume_threads`
/// workers and finishes. Every evaluated epoch must match bit-for-bit.
fn roundtrip(strategy: Strategy, model: ModelKind, checkpoint_epoch: usize, resume_threads: usize) {
    let cfg = tiny_cfg(model);

    let mut reference = SessionBuilder::new(cfg.clone(), strategy, tiny_split(3))
        .build()
        .expect("valid configuration");
    reference.run();

    let mut interrupted = SessionBuilder::new(cfg, strategy, tiny_split(3))
        .build()
        .expect("valid configuration");
    let mut json = None;
    while let Some(event) = interrupted.step() {
        if let SessionEvent::Epoch(e) = event {
            if e.epoch == checkpoint_epoch {
                json = Some(interrupted.checkpoint());
                break;
            }
        }
    }
    let json = json.expect("checkpoint epoch reached");
    drop(interrupted);

    let mut resumed = SessionBuilder::from_checkpoint(&json, tiny_split(3))
        .expect("checkpoint parses")
        .threads(resume_threads)
        .build()
        .expect("checkpoint restores");
    resumed.run();

    assert_eq!(resumed.stop_reason(), Some(StopReason::Completed));
    assert_eq!(
        reference.history().epochs.len(),
        resumed.history().epochs.len()
    );
    for (ea, eb) in reference
        .history()
        .epochs
        .iter()
        .zip(&resumed.history().epochs)
    {
        assert_eq!(ea.epoch, eb.epoch);
        assert_eq!(
            ea.train_loss.to_bits(),
            eb.train_loss.to_bits(),
            "epoch {}",
            ea.epoch
        );
        assert_evals_bit_identical(&ea.eval, &eb.eval);
    }
    assert_evals_bit_identical(
        reference.final_eval().expect("reference eval"),
        resumed.final_eval().expect("resumed eval"),
    );
    // Out-of-band evaluation of the restored state must agree too.
    assert_evals_bit_identical(&reference.evaluate(), &resumed.evaluate());
    assert_eq!(
        reference.ledger().upload_bytes,
        resumed.ledger().upload_bytes
    );
    assert_eq!(
        reference.ledger().download_bytes,
        resumed.ledger().download_bytes
    );
    assert_eq!(reference.rounds_completed(), resumed.rounds_completed());
}

#[test]
fn resume_at_epoch_2_is_bit_identical() {
    roundtrip(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf, 2, 1);
}

#[test]
fn resume_is_bit_identical_across_thread_counts() {
    // Checkpoint under 1 thread, resume under 4 — the determinism
    // contract makes the thread count irrelevant to the results.
    roundtrip(Strategy::HeteFedRec(Ablation::FULL), ModelKind::Ncf, 1, 4);
}

#[test]
fn resume_covers_lightgcn_and_baselines() {
    roundtrip(
        Strategy::HeteFedRec(Ablation::FULL),
        ModelKind::LightGcn,
        2,
        1,
    );
    roundtrip(Strategy::ClusteredFedRec, ModelKind::Ncf, 2, 1);
}

#[test]
fn resume_through_the_filesystem() {
    let cfg = tiny_cfg(ModelKind::Ncf);
    let strategy = Strategy::HeteFedRec(Ablation::FULL);

    let mut reference = SessionBuilder::new(cfg.clone(), strategy, tiny_split(3))
        .build()
        .unwrap();
    reference.run();

    let mut interrupted = SessionBuilder::new(cfg, strategy, tiny_split(3))
        .build()
        .unwrap();
    interrupted.run_epoch();
    let dir = std::env::temp_dir().join(format!("hf_ckpt_test_{}", std::process::id()));
    let path = dir.join("nested").join("session.json");
    interrupted
        .write_checkpoint(&path)
        .expect("checkpoint written");

    let mut resumed = SessionBuilder::from_checkpoint_file(&path, tiny_split(3))
        .expect("file parses")
        .build()
        .expect("restores");
    resumed.run();
    assert_evals_bit_identical(
        reference.final_eval().unwrap(),
        resumed.final_eval().unwrap(),
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_injected_runs_resume_bit_identically() {
    // Drop decisions are keyed by (seed, round, client), so the resumed
    // run must reproduce the same drops after the checkpoint boundary.
    let mut cfg = tiny_cfg(ModelKind::Ncf);
    cfg.drop_prob = 0.3;

    let mut reference = SessionBuilder::new(cfg.clone(), Strategy::AllSmall, tiny_split(3))
        .build()
        .unwrap();
    reference.run();

    let mut interrupted = SessionBuilder::new(cfg, Strategy::AllSmall, tiny_split(3))
        .build()
        .unwrap();
    interrupted.step();
    interrupted.step();
    let mut resumed = Session::restore(&interrupted.checkpoint(), tiny_split(3)).unwrap();
    resumed.run();
    assert_eq!(reference.ledger().uploads, resumed.ledger().uploads);
    assert_evals_bit_identical(
        reference.final_eval().unwrap(),
        resumed.final_eval().unwrap(),
    );
}
