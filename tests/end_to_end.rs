//! Cross-crate integration tests: full federated runs through the public
//! facade, covering every strategy, both base models, and the experiment
//! artefacts the bench binaries consume.

use hetefedrec::prelude::*;

fn tiny_split(seed: u64) -> SplitDataset {
    let data = SyntheticConfig::tiny().generate(seed);
    SplitDataset::paper_split(&data, seed)
}

fn tiny_cfg(model: ModelKind) -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(model, DatasetProfile::MovieLens);
    cfg.dims = TierDims::new(4, 8, 16);
    cfg.epochs = 2;
    cfg.clients_per_round = 32;
    cfg.eval_k = 10;
    cfg.kd.items = 16;
    cfg.threads = 1;
    cfg.seed = 5;
    cfg
}

#[test]
fn every_strategy_trains_and_evaluates() {
    let split = tiny_split(1);
    for strategy in Strategy::ALL {
        let mut cfg = tiny_cfg(ModelKind::Ncf);
        cfg.epochs = 1;
        let result = run_experiment(&cfg, strategy, &split);
        assert!(
            result.final_eval.overall.users > 0,
            "{}: nobody evaluated",
            result.strategy
        );
        assert!(
            result.final_eval.overall.ndcg.is_finite(),
            "{}: NDCG not finite",
            result.strategy
        );
        assert!(result.collapse.iter().all(|c| c.is_finite()));
    }
}

#[test]
fn both_base_models_improve_over_random_ranking() {
    // A random ranking at K=10 over ~120 items with a handful of test
    // items lands near recall ≈ 10/120; trained models must beat it
    // clearly.
    let split = tiny_split(2);
    for model in ModelKind::ALL {
        let cfg = tiny_cfg(model);
        let mut session =
            SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone())
                .build()
                .expect("valid configuration");
        for _ in 0..3 {
            session.run_epoch();
        }
        let eval = session.evaluate();
        assert!(
            eval.overall.recall > 0.15,
            "{}: recall {} not above random",
            model.name(),
            eval.overall.recall
        );
    }
}

#[test]
fn full_runs_are_reproducible_across_processes_and_threads() {
    let split = tiny_split(3);
    let mut cfg_a = tiny_cfg(ModelKind::Ncf);
    cfg_a.threads = 1;
    let mut cfg_b = tiny_cfg(ModelKind::Ncf);
    cfg_b.threads = 4;
    let a = run_experiment(&cfg_a, Strategy::HeteFedRec(Ablation::FULL), &split);
    let b = run_experiment(&cfg_b, Strategy::HeteFedRec(Ablation::FULL), &split);
    assert_eq!(a.final_eval.overall.ndcg, b.final_eval.overall.ndcg);
    assert_eq!(a.final_eval.overall.recall, b.final_eval.overall.recall);
    for (ea, eb) in a.history.epochs.iter().zip(&b.history.epochs) {
        assert_eq!(
            ea.train_loss, eb.train_loss,
            "epoch {} loss differs",
            ea.epoch
        );
    }
}

#[test]
fn federated_training_beats_standalone() {
    // The paper's core collaboration claim, end to end.
    let split = tiny_split(4);
    let cfg = tiny_cfg(ModelKind::Ncf);
    let fed = run_experiment(&cfg, Strategy::HeteFedRec(Ablation::FULL), &split);
    let solo = run_experiment(&cfg, Strategy::Standalone, &split);
    assert!(
        fed.final_eval.overall.ndcg > solo.final_eval.overall.ndcg,
        "federated {} vs standalone {}",
        fed.final_eval.overall.ndcg,
        solo.final_eval.overall.ndcg
    );
}

#[test]
fn history_and_ledger_are_complete() {
    let split = tiny_split(5);
    let cfg = tiny_cfg(ModelKind::Ncf);
    let result = run_experiment(&cfg, Strategy::HeteFedRec(Ablation::FULL), &split);
    assert_eq!(result.history.epochs.len(), cfg.epochs);
    let (best_epoch, best) = result.history.best_ndcg().expect("history non-empty");
    assert!(best_epoch >= 1 && best_epoch <= cfg.epochs);
    assert!(best >= result.history.epochs[0].eval.overall.ndcg - 1e-12);
    assert!(result.comm.uploads > 0 && result.comm.downloads > 0);
    assert!(
        result.comm.upload_bytes < result.comm.download_bytes,
        "sparse uploads should be cheaper than dense downloads"
    );
}

#[test]
fn per_group_users_partition_the_evaluated_population() {
    let split = tiny_split(6);
    let cfg = tiny_cfg(ModelKind::LightGcn);
    let result = run_experiment(&cfg, Strategy::AllLarge, &split);
    let total: usize = result.final_eval.per_group.iter().map(|g| g.users).sum();
    assert_eq!(total, result.final_eval.overall.users);
}

#[test]
fn exclusive_baseline_uploads_less_than_inclusive() {
    let split = tiny_split(7);
    let cfg = tiny_cfg(ModelKind::Ncf);
    let incl = run_experiment(&cfg, Strategy::AllLarge, &split);
    let excl = run_experiment(&cfg, Strategy::AllLargeExclusive, &split);
    assert!(excl.comm.uploads < incl.comm.uploads);
}

#[test]
fn division_ratio_controls_group_sizes_end_to_end() {
    let split = tiny_split(8);
    let mut cfg = tiny_cfg(ModelKind::Ncf);
    cfg.ratio = DivisionRatio::OPTIMISTIC; // 2:3:5
    let session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split)
        .build()
        .expect("valid configuration");
    let sizes = session.model_groups().sizes();
    assert!(
        sizes[2] > sizes[0],
        "optimistic ratio should maximise Ul: {sizes:?}"
    );
}

#[test]
fn serde_snapshot_of_results_roundtrips() {
    // ExperimentResult is Serialize/Deserialize; snapshot via the compact
    // debug form to ensure all fields are populated and printable.
    let split = tiny_split(9);
    let mut cfg = tiny_cfg(ModelKind::Ncf);
    cfg.epochs = 1;
    let result = run_experiment(&cfg, Strategy::ClusteredFedRec, &split);
    let dump = format!("{result:?}");
    assert!(dump.contains("Clustered FedRec"));
    assert!(dump.contains("history"));
}
