//! Property-based tests on the workspace's core invariants, driven by the
//! workspace's own seeded generators (no proptest dependency — the build
//! must succeed with an empty cargo registry). These cover the algebraic
//! guarantees the paper's method depends on: the Eq. 10 prefix invariant
//! under arbitrary update streams, aggregation linearity, metric bounds,
//! similarity-matrix geometry, and transport robustness against arbitrary
//! bytes.
//!
//! Each property runs `CASES` independently seeded cases; a failure
//! message carries the case index, so `substream(PROP_SEED,
//! SeedStream::Custom(test_key), case)` reproduces the exact inputs.

use hetefedrec::core::config::TrainConfig;
use hetefedrec::core::server::ServerState;
use hetefedrec::core::strategy::{Ablation, Strategy};
use hetefedrec::fedsim::transport::{ClientUpdate, SparseRowUpdate};
use hetefedrec::metrics::eval::Evaluator;
use hetefedrec::models::ModelKind;
use hetefedrec::prelude::Tier;
use hetefedrec::tensor::rng::{substream, Rng, SeedStream, StdRng};
use hetefedrec::tensor::{sim, stats, Matrix};

const ITEMS: usize = 24;
const CASES: u64 = 48;
const PROP_SEED: u64 = 0xC0FFEE;

/// One deterministic RNG per (property, case) pair.
fn case_rng(test_key: u64, case: u64) -> StdRng {
    substream(PROP_SEED, SeedStream::Custom(test_key), case)
}

fn test_cfg() -> TrainConfig {
    TrainConfig::test_default(ModelKind::Ncf)
}

/// Random sparse update at a given tier: 1–5 distinct rows, deltas in
/// (-0.5, 0.5).
fn gen_update(rng: &mut StdRng, tier: Tier) -> (Tier, ClientUpdate) {
    let dim = match tier {
        Tier::Small => 4usize,
        Tier::Medium => 8,
        Tier::Large => 16,
    };
    let n_rows = rng.gen_range(1usize..6);
    let mut rows: Vec<(u32, Vec<f32>)> = (0..n_rows)
        .map(|_| {
            let row = rng.gen_range(0u32..ITEMS as u32);
            let delta: Vec<f32> = (0..dim).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
            (row, delta)
        })
        .collect();
    rows.sort_by_key(|(r, _)| *r);
    rows.dedup_by_key(|(r, _)| *r);
    (
        tier,
        ClientUpdate {
            items: SparseRowUpdate::new(dim, rows),
            thetas: vec![],
        },
    )
}

fn gen_tier(rng: &mut StdRng) -> Tier {
    match rng.gen_range(0usize..3) {
        0 => Tier::Small,
        1 => Tier::Medium,
        _ => Tier::Large,
    }
}

/// Random mixed-tier cohort of 1–7 updates.
fn gen_round(rng: &mut StdRng) -> Vec<(Tier, ClientUpdate)> {
    let n = rng.gen_range(1usize..8);
    (0..n)
        .map(|_| {
            let tier = gen_tier(rng);
            gen_update(rng, tier)
        })
        .collect()
}

/// Sorted, deduplicated vector of `len` draws from `0..ITEMS`.
fn gen_item_set(rng: &mut StdRng, len: usize) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len)
        .map(|_| rng.gen_range(0u32..ITEMS as u32))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Eq. 10: the prefix equality `Vs = Vm[:Ns] = Vl[:Ns]`, `Vm = Vl[:Nm]`
/// survives ANY sequence of padded-sum aggregation rounds while
/// distillation is off.
#[test]
fn eq10_invariant_under_arbitrary_updates() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let n_rounds = rng.gen_range(1usize..5);
        let mut server =
            ServerState::new(ITEMS, &test_cfg(), Strategy::HeteFedRec(Ablation::NO_RESKD));
        for _ in 0..n_rounds {
            let round = gen_round(&mut rng);
            server.apply_round(&round);
        }
        assert!(
            server.eq10_violation() < 1e-4,
            "case {case}: violation {}",
            server.eq10_violation()
        );
    }
}

/// Aggregation is additive: applying two cohorts in one round equals
/// applying them in two consecutive rounds (plain SGD-sum server).
#[test]
fn aggregation_is_additive() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let a = gen_round(&mut rng);
        let b = gen_round(&mut rng);

        let cfg = test_cfg();
        let strategy = Strategy::HeteFedRec(Ablation::NO_RESKD);
        let mut together = ServerState::new(ITEMS, &cfg, strategy);
        let mut split_rounds = ServerState::new(ITEMS, &cfg, strategy);

        let mut combined = a.clone();
        combined.extend(b.clone());
        together.apply_round(&combined);
        split_rounds.apply_round(&a);
        split_rounds.apply_round(&b);

        for tier in Tier::ALL {
            let x = together.table(tier);
            let y = split_rounds.table(tier);
            let diff = x.sub(y).max_abs();
            // SqrtCount normalisation makes the two orders differ when the
            // same row appears in both cohorts; restrict the check to the
            // linear part by allowing that deviation only if row sets
            // overlap. For disjoint rows the results must match exactly.
            let rows_a: std::collections::HashSet<u32> = a
                .iter()
                .flat_map(|(_, u)| u.items.rows.iter().map(|(r, _)| *r))
                .collect();
            let rows_b: std::collections::HashSet<u32> = b
                .iter()
                .flat_map(|(_, u)| u.items.rows.iter().map(|(r, _)| *r))
                .collect();
            if rows_a.is_disjoint(&rows_b) {
                assert!(diff < 1e-4, "case {case}: {tier:?} diff {diff}");
            }
        }
    }
}

/// Ranking metrics stay within [0, 1] for arbitrary score vectors.
#[test]
fn metric_bounds_hold() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let scores: Vec<f32> = (0..ITEMS)
            .map(|_| rng.gen_range(-100.0f32..100.0))
            .collect();
        let mask_len = rng.gen_range(0usize..4);
        let mask = gen_item_set(&mut rng, mask_len);
        let test_len = rng.gen_range(1usize..4);
        let test = gen_item_set(&mut rng, test_len);
        let ev = Evaluator { k: 5 };
        if let Some(user) = ev.evaluate_user(&scores, &mask, &test) {
            for v in [
                user.recall,
                user.ndcg,
                user.hit_rate,
                user.precision,
                user.mrr,
            ] {
                assert!((0.0..=1.0 + 1e-9).contains(&v), "case {case}: metric {v}");
            }
        }
    }
}

/// Cosine-similarity matrices are symmetric with unit diagonal and
/// entries in [-1, 1], for arbitrary embeddings.
#[test]
fn similarity_matrix_geometry() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let data: Vec<f32> = (0..5 * 6).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let v = Matrix::from_vec(5, 6, data);
        let s = sim::cosine_similarity_matrix(&v);
        for i in 0..5 {
            assert!(
                (s.get(i, i) - 1.0).abs() < 1e-5,
                "case {case}: diag {}",
                s.get(i, i)
            );
            for j in 0..5 {
                assert!(
                    (s.get(i, j) - s.get(j, i)).abs() < 1e-5,
                    "case {case}: asymmetric at ({i},{j})"
                );
                assert!(
                    s.get(i, j) >= -1.0 - 1e-4 && s.get(i, j) <= 1.0 + 1e-4,
                    "case {case}: out of range at ({i},{j}): {}",
                    s.get(i, j)
                );
            }
        }
    }
}

/// The correlation matrix of arbitrary data has entries in [-1, 1]
/// and unit diagonal on non-degenerate columns.
#[test]
fn correlation_matrix_bounds() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let data: Vec<f32> = (0..20 * 4).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let m = Matrix::from_vec(20, 4, data);
        let corr = stats::correlation(&m, 1e-9);
        let vars = stats::column_variances(&m);
        for i in 0..4 {
            if vars[i] > 1e-6 {
                assert!(
                    (corr.get(i, i) - 1.0).abs() < 1e-2,
                    "case {case}: diag {}",
                    corr.get(i, i)
                );
            }
            for j in 0..4 {
                assert!(
                    corr.get(i, j).abs() <= 1.0 + 1e-3,
                    "case {case}: corr({i},{j}) = {}",
                    corr.get(i, j)
                );
            }
        }
    }
}

/// Transport decode never panics on arbitrary bytes.
#[test]
fn transport_is_robust() {
    for case in 0..CASES * 4 {
        let mut rng = case_rng(6, case);
        let len = rng.gen_range(0usize..256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let _ = ClientUpdate::decode(bytes);
    }
}

/// Decode also never panics on *mutated valid* payloads — closer to the
/// hostile inputs a server actually sees than uniform noise.
#[test]
fn transport_survives_bit_flips() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let tier = gen_tier(&mut rng);
        let (_, u) = gen_update(&mut rng, tier);
        let mut wire = u.encode();
        for _ in 0..4 {
            let pos = rng.gen_range(0usize..wire.len());
            wire[pos] ^= 1 << rng.gen_range(0u32..8);
        }
        let _ = ClientUpdate::decode(&wire); // must not panic; None is fine
    }
}

/// Valid payloads roundtrip exactly at every tier.
#[test]
fn transport_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let tier = gen_tier(&mut rng);
        let (_, u) = gen_update(&mut rng, tier);
        let decoded = ClientUpdate::decode(u.encode()).expect("valid payload");
        assert_eq!(u, decoded, "case {case}");
    }
}

/// Dataset splits always partition each user's items.
#[test]
fn split_partitions_users() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let seed = rng.gen_range(0u64..500);
        let data = hetefedrec::dataset::SyntheticConfig {
            num_users: 12,
            num_items: 40,
            median_interactions: 6.0,
            mean_interactions: 9.0,
            min_interactions: 3,
            latent_dim: 4,
            num_clusters: 2,
            cluster_spread: 0.3,
            zipf_exponent: 0.5,
            popularity_weight: 0.3,
            temperature: 0.5,
        }
        .generate(seed);
        let split = hetefedrec::dataset::SplitDataset::paper_split(&data, seed);
        for (u, s) in split.iter_users() {
            let mut all: Vec<u32> = s
                .train
                .iter()
                .chain(&s.valid)
                .chain(&s.test)
                .copied()
                .collect();
            all.sort_unstable();
            assert_eq!(
                all.as_slice(),
                data.user(u).items(),
                "case {case} (seed {seed}): user {u} not partitioned"
            );
            assert!(
                !s.train.is_empty(),
                "case {case} (seed {seed}): user {u} train empty"
            );
        }
    }
}

/// Client division always partitions the population with small-tier data
/// counts never exceeding large-tier ones.
#[test]
fn division_is_a_partition() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let n = rng.gen_range(3usize..60);
        let counts: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..500)).collect();
        let (sw, mw, lw) = (
            rng.gen_range(1u32..6),
            rng.gen_range(1u32..6),
            rng.gen_range(1u32..6),
        );
        let ratio = hetefedrec::dataset::DivisionRatio::new(sw, mw, lw);
        let groups = hetefedrec::dataset::ClientGroups::divide_by_counts(&counts, ratio);
        assert_eq!(
            groups.sizes().iter().sum::<usize>(),
            counts.len(),
            "case {case}: not a partition"
        );
        let smalls: Vec<usize> = groups
            .members(Tier::Small)
            .iter()
            .map(|&u| counts[u])
            .collect();
        let larges: Vec<usize> = groups
            .members(Tier::Large)
            .iter()
            .map(|&u| counts[u])
            .collect();
        if let (Some(&max_s), Some(&min_l)) = (smalls.iter().max(), larges.iter().min()) {
            assert!(
                max_s <= min_l,
                "case {case}: small max {max_s} > large min {min_l}"
            );
        }
    }
}
