//! Property-based tests on the workspace's core invariants, driven by
//! proptest. These cover the algebraic guarantees the paper's method
//! depends on: the Eq. 10 prefix invariant under arbitrary update
//! streams, aggregation linearity, metric bounds, similarity-matrix
//! geometry, and transport robustness against arbitrary bytes.

use hetefedrec::core::config::TrainConfig;
use hetefedrec::core::server::ServerState;
use hetefedrec::core::strategy::{Ablation, Strategy};
use hetefedrec::fedsim::transport::{ClientUpdate, SparseRowUpdate};
use hetefedrec::metrics::eval::Evaluator;
use hetefedrec::models::ModelKind;
use hetefedrec::prelude::Tier;
use hetefedrec::tensor::{sim, stats, Matrix};
use proptest::prelude::*;
#[allow(unused_imports)]
use proptest::strategy::Strategy as PropStrategy;

const ITEMS: usize = 24;

fn test_cfg() -> TrainConfig {
    TrainConfig::test_default(ModelKind::Ncf)
}

/// Strategy for a random sparse update at a given tier.
fn arb_update(tier: Tier) -> impl proptest::strategy::Strategy<Value = (Tier, ClientUpdate)> {
    let dim = match tier {
        Tier::Small => 4usize,
        Tier::Medium => 8,
        Tier::Large => 16,
    };
    let row = 0..(ITEMS as u32);
    let delta = proptest::collection::vec(-0.5f32..0.5, dim);
    proptest::collection::vec((row, delta), 1..6).prop_map(move |mut rows| {
        rows.sort_by_key(|(r, _)| *r);
        rows.dedup_by_key(|(r, _)| *r);
        (
            tier,
            ClientUpdate { items: SparseRowUpdate::new(dim, rows), thetas: vec![] },
        )
    })
}

fn arb_round() -> impl proptest::strategy::Strategy<Value = Vec<(Tier, ClientUpdate)>> {
    proptest::collection::vec(
        prop_oneof![
            arb_update(Tier::Small),
            arb_update(Tier::Medium),
            arb_update(Tier::Large)
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. 10: the prefix equality `Vs = Vm[:Ns] = Vl[:Ns]`, `Vm = Vl[:Nm]`
    /// survives ANY sequence of padded-sum aggregation rounds while
    /// distillation is off.
    #[test]
    fn eq10_invariant_under_arbitrary_updates(rounds in proptest::collection::vec(arb_round(), 1..5)) {
        let mut server = ServerState::new(ITEMS, &test_cfg(), Strategy::HeteFedRec(Ablation::NO_RESKD));
        for round in &rounds {
            server.apply_round(round);
        }
        prop_assert!(server.eq10_violation() < 1e-4, "violation {}", server.eq10_violation());
    }

    /// Aggregation is additive: applying two cohorts in one round equals
    /// applying them in two consecutive rounds (plain SGD-sum server).
    #[test]
    fn aggregation_is_additive(a in arb_round(), b in arb_round()) {
        let cfg = test_cfg();
        let strategy = Strategy::HeteFedRec(Ablation::NO_RESKD);
        let mut together = ServerState::new(ITEMS, &cfg, strategy);
        let mut split_rounds = ServerState::new(ITEMS, &cfg, strategy);

        let mut combined = a.clone();
        combined.extend(b.clone());
        together.apply_round(&combined);
        split_rounds.apply_round(&a);
        split_rounds.apply_round(&b);

        for tier in Tier::ALL {
            let x = together.table(tier);
            let y = split_rounds.table(tier);
            let diff = x.sub(y).max_abs();
            // SqrtCount normalisation makes the two orders differ when the
            // same row appears in both cohorts; restrict the check to the
            // linear part by allowing that deviation only if row sets
            // overlap. For disjoint rows the results must match exactly.
            let rows_a: std::collections::HashSet<u32> =
                a.iter().flat_map(|(_, u)| u.items.rows.iter().map(|(r, _)| *r)).collect();
            let rows_b: std::collections::HashSet<u32> =
                b.iter().flat_map(|(_, u)| u.items.rows.iter().map(|(r, _)| *r)).collect();
            if rows_a.is_disjoint(&rows_b) {
                prop_assert!(diff < 1e-4, "{tier:?} diff {diff}");
            }
        }
    }

    /// Ranking metrics stay within [0, 1] for arbitrary score vectors.
    #[test]
    fn metric_bounds_hold(
        scores in proptest::collection::vec(-100.0f32..100.0, ITEMS),
        mask in proptest::collection::vec(0..(ITEMS as u32), 0..4),
        test in proptest::collection::vec(0..(ITEMS as u32), 1..4),
    ) {
        let mut mask = mask;
        mask.sort_unstable();
        mask.dedup();
        let mut test = test;
        test.sort_unstable();
        test.dedup();
        let ev = Evaluator { k: 5 };
        if let Some(user) = ev.evaluate_user(&scores, &mask, &test) {
            for v in [user.recall, user.ndcg, user.hit_rate, user.precision, user.mrr] {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "metric {v}");
            }
        }
    }

    /// Cosine-similarity matrices are symmetric with unit diagonal and
    /// entries in [-1, 1], for arbitrary embeddings.
    #[test]
    fn similarity_matrix_geometry(
        data in proptest::collection::vec(-2.0f32..2.0, 5 * 6)
    ) {
        let v = Matrix::from_vec(5, 6, data);
        let s = sim::cosine_similarity_matrix(&v);
        for i in 0..5 {
            prop_assert!((s.get(i, i) - 1.0).abs() < 1e-5);
            for j in 0..5 {
                prop_assert!((s.get(i, j) - s.get(j, i)).abs() < 1e-5);
                prop_assert!(s.get(i, j) >= -1.0 - 1e-4 && s.get(i, j) <= 1.0 + 1e-4);
            }
        }
    }

    /// The correlation matrix of arbitrary data has entries in [-1, 1]
    /// and unit diagonal on non-degenerate columns.
    #[test]
    fn correlation_matrix_bounds(
        data in proptest::collection::vec(-5.0f32..5.0, 20 * 4)
    ) {
        let m = Matrix::from_vec(20, 4, data);
        let corr = stats::correlation(&m, 1e-9);
        let vars = stats::column_variances(&m);
        for i in 0..4 {
            if vars[i] > 1e-6 {
                prop_assert!((corr.get(i, i) - 1.0).abs() < 1e-2, "diag {}", corr.get(i, i));
            }
            for j in 0..4 {
                prop_assert!(corr.get(i, j).abs() <= 1.0 + 1e-3);
            }
        }
    }

    /// Transport decode never panics on arbitrary bytes, and valid
    /// payloads roundtrip exactly.
    #[test]
    fn transport_is_robust(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ClientUpdate::decode(hetefedrec::fedsim::transport::wire_bytes(bytes));
    }

    #[test]
    fn transport_roundtrip(update in arb_update(Tier::Medium)) {
        let (_, u) = update;
        let decoded = ClientUpdate::decode(u.encode()).expect("valid payload");
        prop_assert_eq!(u, decoded);
    }

    /// Dataset splits always partition each user's items.
    #[test]
    fn split_partitions_users(seed in 0u64..500) {
        let data = hetefedrec::dataset::SyntheticConfig {
            num_users: 12,
            num_items: 40,
            median_interactions: 6.0,
            mean_interactions: 9.0,
            min_interactions: 3,
            latent_dim: 4,
            num_clusters: 2,
            cluster_spread: 0.3,
            zipf_exponent: 0.5,
            popularity_weight: 0.3,
            temperature: 0.5,
        }
        .generate(seed);
        let split = hetefedrec::dataset::SplitDataset::paper_split(&data, seed);
        for (u, s) in split.iter_users() {
            let mut all: Vec<u32> =
                s.train.iter().chain(&s.valid).chain(&s.test).copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all.as_slice(), data.user(u).items(), "user {} not partitioned", u);
            prop_assert!(!s.train.is_empty());
        }
    }

    /// Client division always partitions the population with sizes
    /// matching the ratio to within rounding.
    #[test]
    fn division_is_a_partition(
        counts in proptest::collection::vec(0usize..500, 3..60),
        sw in 1u32..6, mw in 1u32..6, lw in 1u32..6,
    ) {
        let ratio = hetefedrec::dataset::DivisionRatio::new(sw, mw, lw);
        let groups = hetefedrec::dataset::ClientGroups::divide_by_counts(&counts, ratio);
        prop_assert_eq!(groups.sizes().iter().sum::<usize>(), counts.len());
        // Every small-tier count <= every large-tier count.
        let smalls: Vec<usize> = groups.members(Tier::Small).iter().map(|&u| counts[u]).collect();
        let larges: Vec<usize> = groups.members(Tier::Large).iter().map(|&u| counts[u]).collect();
        if let (Some(&max_s), Some(&min_l)) = (smalls.iter().max(), larges.iter().min()) {
            prop_assert!(max_s <= min_l, "small max {max_s} > large min {min_l}");
        }
    }
}
