//! Acceptance tests for the secure-aggregation upload path, through the
//! public facade. The determinism bar matches `async_determinism.rs`:
//! *byte-equal checkpoints*. A masked run under injected upload drops and
//! flap-prone churn must produce the identical final checkpoint across
//! 1/2/8 worker threads in both orchestration modes, every round's
//! unmasked ring aggregate must verify against the plaintext quantized
//! reference (the engine hard-asserts it; the report records it), and a
//! run interrupted mid-epoch — with pipelined escrow shares in flight —
//! must resume byte-identically. CI greps this test's output for the
//! `secagg resume verified` proof line.

use hetefedrec::prelude::*;

fn tiny_split(seed: u64) -> SplitDataset {
    let data = SyntheticConfig::tiny().generate(seed);
    SplitDataset::paper_split(&data, seed)
}

fn masked_cfg(mode: Mode) -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(ModelKind::Ncf, DatasetProfile::MovieLens);
    cfg.dims = TierDims::new(4, 8, 16);
    cfg.epochs = 2;
    // Small cohorts so each epoch runs several rounds (the tiny split has
    // 60 users) and mid-epoch interruption is meaningful.
    cfg.clients_per_round = 16;
    cfg.eval_k = 10;
    cfg.kd.items = 16;
    cfg.seed = 11;
    cfg.threads = 1;
    // Both dropout sources at once: injected upload losses and churn —
    // moderate rates, so groups stay above the escrow threshold and every
    // round's recovery succeeds.
    cfg.drop_prob = 0.1;
    cfg.churn = ChurnProfile::Flappy {
        offline_prob: 0.1,
        period: 30,
    };
    cfg.secagg = SecAggConfig {
        enabled: true,
        scale_bits: 16,
    };
    if mode == Mode::Async {
        cfg.mode = Mode::Async;
        cfg.async_cfg = AsyncConfig {
            staleness_beta: 0.5,
            buffer: 6,
            concurrency: 24,
            adaptive_beta: false,
        };
        cfg.latency = LatencyProfile::LogNormal {
            median: 3.0,
            sigma: 0.8,
        };
    }
    cfg
}

/// Runs to completion, collecting every round's secagg telemetry, and
/// returns the final checkpoint document alongside it.
fn run_collecting(
    mut cfg: TrainConfig,
    strategy: Strategy,
    threads: usize,
    split: &SplitDataset,
) -> (String, Vec<SecAggRoundStats>) {
    cfg.threads = threads;
    let mut session = SessionBuilder::new(cfg, strategy, split.clone())
        .build()
        .expect("valid masked configuration");
    let mut stats = Vec::new();
    while let Some(event) = session.step() {
        if let SessionEvent::Round(r) = event {
            stats.push(r.secagg.expect("masked rounds always report secagg stats"));
        }
    }
    assert!(session.is_finished());
    (session.checkpoint(), stats)
}

/// Pins the config's `threads` field — the one execution-resource knob a
/// checkpoint records — so documents from runs at different worker counts
/// can be compared byte-for-byte. Everything else must already agree.
fn normalize_threads(doc: &str) -> String {
    let start = doc.find("\"threads\":").expect("threads field present");
    let end = start + doc[start..].find(',').expect("field terminator");
    format!("{}\"threads\":0{}", &doc[..start], &doc[end..])
}

/// Every round verified, dropouts actually happened, and every dropout's
/// masks were recovered — the protocol exercised all three phases.
fn assert_protocol_exercised(mode: Mode, stats: &[SecAggRoundStats]) {
    assert!(!stats.is_empty(), "{mode:?}: no masked rounds ran");
    assert!(
        stats.iter().all(|s| s.verified),
        "{mode:?}: a round failed the ring self-check"
    );
    let dropped: usize = stats.iter().map(|s| s.dropped).sum();
    let recovered: usize = stats.iter().map(|s| s.recovered).sum();
    let survivors: usize = stats.iter().map(|s| s.survivors).sum();
    assert!(dropped > 0, "{mode:?}: no dropouts were injected");
    // A group every member of which dropped folds no masks, so there is
    // nothing to recover; every other dropout must have been recovered
    // (verified rounds guarantee it — an unrecoverable group flips the
    // flag).
    assert!(recovered > 0, "{mode:?}: dropout recovery never exercised");
    assert!(
        recovered <= dropped,
        "{mode:?}: recovered more than dropped"
    );
    assert!(survivors > 0, "{mode:?}: nobody survived");
    assert!(
        stats.iter().all(|s| s.masked_bytes > 0 || s.survivors == 0),
        "{mode:?}: survivors uploaded no masked bytes"
    );
    assert!(
        stats.iter().all(|s| s.setup_bytes > 0 || s.groups == 0),
        "{mode:?}: groups formed without setup traffic"
    );
}

#[test]
fn masked_runs_are_byte_identical_across_thread_counts() {
    for mode in [Mode::Sync, Mode::Async] {
        let split = tiny_split(9);
        let cfg = masked_cfg(mode);
        let strategy = Strategy::HeteFedRec(Ablation::FULL);
        let (reference, stats) = run_collecting(cfg.clone(), strategy, 1, &split);
        assert_protocol_exercised(mode, &stats);
        let reference = normalize_threads(&reference);
        for threads in [2, 8] {
            let (got, stats) = run_collecting(cfg.clone(), strategy, threads, &split);
            assert_protocol_exercised(mode, &stats);
            assert_eq!(
                reference,
                normalize_threads(&got),
                "{mode:?}: masked checkpoint diverges at {threads} threads"
            );
        }
    }
}

#[test]
fn clustered_strategy_masks_per_tier() {
    // ClusteredFedRec aggregates within each tier, so the partitioner
    // must form up to three groups per round — and the same byte-equality
    // bar applies.
    let split = tiny_split(9);
    let mut cfg = masked_cfg(Mode::Sync);
    // Per-tier groups are a third the size, so keep dropout gentle enough
    // that every tier stays above its escrow threshold.
    cfg.drop_prob = 0.05;
    cfg.churn = ChurnProfile::None;
    let (reference, stats) = run_collecting(cfg.clone(), Strategy::ClusteredFedRec, 1, &split);
    assert_protocol_exercised(Mode::Sync, &stats);
    assert!(
        stats.iter().any(|s| s.groups > 1),
        "clustered runs never formed more than one group"
    );
    let (got, _) = run_collecting(cfg, Strategy::ClusteredFedRec, 8, &split);
    assert_eq!(normalize_threads(&reference), normalize_threads(&got));
}

#[test]
fn masked_mid_epoch_resume_lands_on_the_same_bytes() {
    let split = tiny_split(9);
    let cfg = masked_cfg(Mode::Sync);
    let strategy = Strategy::HeteFedRec(Ablation::FULL);

    // Uninterrupted reference at 1 thread.
    let (reference, _) = run_collecting(cfg.clone(), strategy, 1, &split);

    // Interrupt mid-epoch (a prime number of steps), while the pipelined
    // setup for the next cohort — keys, secrets, escrowed Shamir shares —
    // is in flight. The document must carry it.
    let mut first = SessionBuilder::new(cfg, strategy, split.clone())
        .build()
        .expect("valid masked configuration");
    for _ in 0..7 {
        first.step();
    }
    assert!(!first.is_finished(), "interrupted run already finished");
    let mid = first.checkpoint();
    assert!(mid.contains("\"version\":3"), "masked document stamps v3");
    assert!(
        mid.contains("\"escrow\":"),
        "mid-epoch document carries escrowed seed shares"
    );

    let mut resumed = SessionBuilder::from_checkpoint(&mid, split.clone())
        .expect("mid-epoch document parses")
        .threads(4)
        .build()
        .expect("mid-epoch document restores");
    resumed.run();
    assert_eq!(
        normalize_threads(&reference),
        normalize_threads(&resumed.checkpoint()),
        "resumed masked run diverges from the uninterrupted reference"
    );
    println!("secagg resume verified");
}

#[test]
fn default_off_documents_stay_v2_and_round_trip() {
    // With secure aggregation off (the default), the writer must stamp
    // version 2 and omit every secagg field, so default-configuration
    // checkpoints stay byte-identical to pre-v3 builds — and such a v2
    // document must still restore and finish deterministically.
    let split = tiny_split(9);
    let mut cfg = masked_cfg(Mode::Sync);
    cfg.secagg = SecAggConfig::default();
    let strategy = Strategy::HeteFedRec(Ablation::FULL);

    let mut session = SessionBuilder::new(cfg.clone(), strategy, split.clone())
        .build()
        .expect("valid configuration");
    for _ in 0..3 {
        session.step();
    }
    let mid = session.checkpoint();
    assert!(mid.contains("\"version\":2"), "default-off stamps v2");
    assert!(
        !mid.contains("secagg"),
        "default-off document must not mention secagg: {mid}"
    );

    // The interrupted run and a restore of its document must land on the
    // same final bytes.
    session.run();
    let mut resumed = Session::restore(&mid, split.clone()).expect("v2 document restores");
    resumed.run();
    assert_eq!(session.checkpoint(), resumed.checkpoint());
}

#[test]
fn v2_era_document_with_secagg_flipped_on_restores_with_fresh_state() {
    // Editing a v2 (pre-secagg) document's config to enable the masked
    // path by hand must restore: the session rebuilds fresh protocol
    // state and the remaining rounds run masked and verified.
    let split = tiny_split(9);
    let mut cfg = masked_cfg(Mode::Sync);
    cfg.secagg = SecAggConfig::default();
    let mut session = SessionBuilder::new(cfg, Strategy::HeteFedRec(Ablation::FULL), split.clone())
        .build()
        .expect("valid configuration");
    for _ in 0..3 {
        session.step();
    }
    let v2 = session.checkpoint();

    // The config object ends right before `,"strategy"`; splice the
    // secagg block in as its last field.
    let cfg_end = v2.find(",\"strategy\"").expect("strategy field present");
    let mut flipped = v2.clone();
    flipped.insert_str(
        cfg_end - 1,
        ",\"secagg\":{\"enabled\":true,\"scale_bits\":16}",
    );

    let mut resumed = Session::restore(&flipped, split).expect("edited document restores");
    let mut verified_rounds = 0usize;
    while let Some(event) = resumed.step() {
        if let SessionEvent::Round(r) = event {
            let s = r.secagg.expect("flipped-on rounds run masked");
            assert!(s.verified);
            verified_rounds += 1;
        }
    }
    assert!(verified_rounds > 0, "no masked rounds ran after the flip");
}
