//! Serving-layer acceptance tests (through the facade):
//!
//! * `recommend` vs a naive full-sort reference — NaN-filtered items are
//!   skipped, ties break toward the smaller item id;
//! * serving-vs-`evaluate` ranking agreement on a trained session;
//! * batch/thread-count bit-identity for `recommend_batch`.

use hetefedrec::metrics::eval::{Evaluator, GroupedEval};
use hetefedrec::prelude::*;
use hetefedrec::tensor::rng::{stream, Rng, SeedStream};

fn tiny_split(seed: u64) -> SplitDataset {
    let data = SyntheticConfig::tiny().generate(seed);
    SplitDataset::paper_split(&data, seed)
}

fn trained(model: ModelKind, strategy: Strategy, epochs: usize) -> Session {
    let mut cfg = TrainConfig::test_default(model);
    cfg.epochs = epochs.max(1);
    let mut s = SessionBuilder::new(cfg, strategy, tiny_split(21))
        .eval_every(0)
        .build()
        .expect("valid config");
    for _ in 0..epochs {
        s.run_epoch();
    }
    s
}

/// The reference ranking: full sort of the post-filter score vector,
/// skipping NaN scores and every excluded id, ties toward the smaller
/// item id.
fn naive_reference(scores: &[f32], k: usize, exclude: &[u32]) -> Vec<u32> {
    let mut sorted_exclude = exclude.to_vec();
    sorted_exclude.sort_unstable();
    let mut candidates: Vec<(f32, u32)> = scores
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_nan())
        .map(|(i, &s)| (s, i as u32))
        .filter(|(_, i)| sorted_exclude.binary_search(i).is_err())
        .collect();
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    candidates.into_iter().take(k).map(|(_, i)| i).collect()
}

#[test]
fn recommend_matches_naive_full_sort_reference() {
    let session = trained(ModelKind::Ncf, Strategy::HeteFedRec(Ablation::FULL), 2);
    let split = session.split().clone();
    let recommender = RecommenderBuilder::new(session.export_artifact())
        .default_k(10)
        .panel_items(13)
        .build()
        .unwrap();

    // Randomised request mix: varying k, explicit exclusions, popularity
    // floors, and predicates (which surface as NaN scores the selection
    // must skip).
    let mut rng = stream(77, SeedStream::Custom(40));
    for case in 0..60 {
        let user = rng.gen_range(0..split.num_users() + 3); // some cold
        let k = 1 + rng.gen_range(0..25usize);
        let mut request = RecommendRequest::new(user).with_k(k);
        if case % 3 == 0 {
            let banned: Vec<u32> = (0..rng.gen_range(0..8usize))
                .map(|_| rng.gen_range(0..split.num_items()) as u32)
                .collect();
            request = request.exclude(banned);
        }
        if case % 4 == 1 {
            request = request.with_min_popularity(rng.gen_range(0..6usize) as u32);
        }
        if case % 5 == 2 {
            let modulus = 2 + rng.gen_range(0..3usize) as u32;
            request = request.with_filter(move |item| item % modulus != 0);
        }
        if case % 7 == 3 {
            request = request.keep_seen();
        }

        let scores = recommender.score_request(&request);
        let mut exclude = request.exclude.clone();
        if request.exclude_seen && user < split.num_users() {
            exclude.extend_from_slice(&split.user(user).train);
        }
        let expected = naive_reference(&scores, k, &exclude);
        let response = recommender.recommend(&request);
        let got: Vec<u32> = response.items.iter().map(|it| it.item).collect();
        assert_eq!(got, expected, "case {case} (user {user}, k {k})");
        for it in &response.items {
            assert_eq!(it.score.to_bits(), scores[it.item as usize].to_bits());
            assert!(!it.score.is_nan(), "NaN-filtered item {} ranked", it.item);
        }
    }
}

#[test]
fn serving_rankings_agree_with_evaluate() {
    for model in [ModelKind::Ncf, ModelKind::LightGcn] {
        let session = trained(model, Strategy::HeteFedRec(Ablation::FULL), 3);
        let split = session.split();
        let eval_k = session.cfg().eval_k;
        let offline = session.evaluate();

        let recommender = RecommenderBuilder::new(session.export_artifact())
            .default_k(eval_k)
            .threads(2)
            .build()
            .unwrap();
        let evaluator = Evaluator { k: eval_k };
        let mut grouped = GroupedEval::new(3);
        for user in 0..split.num_users() {
            let user_split = split.user(user);
            if user_split.test.is_empty() {
                continue;
            }
            let response = recommender.recommend(&RecommendRequest::new(user));
            let ranked: Vec<u32> = response.items.iter().map(|it| it.item).collect();
            let eval = evaluator
                .evaluate_ranked(&ranked, &user_split.test)
                .expect("test items present");
            grouped.push(session.data_groups().tier(user).index(), eval);
        }
        let served = grouped.overall();
        assert_eq!(
            served.ndcg.to_bits(),
            offline.overall.ndcg.to_bits(),
            "{model:?}: served NDCG diverges from evaluate()"
        );
        assert_eq!(served.recall.to_bits(), offline.overall.recall.to_bits());
        assert_eq!(served.mrr.to_bits(), offline.overall.mrr.to_bits());
        assert_eq!(served.users, offline.overall.users);
    }
}

#[test]
fn precomputed_item_halves_match_the_memory_lean_path() {
    // The builder's precomputed whole-catalogue item halves and the
    // per-batch blocked product must be bit-identical, for every panel
    // size (including one larger than the catalogue) and for shared,
    // standalone-solo, and cold-start requests alike.
    for (model, strategy) in [
        (ModelKind::Ncf, Strategy::HeteFedRec(Ablation::FULL)),
        (ModelKind::LightGcn, Strategy::HeteFedRec(Ablation::FULL)),
        (ModelKind::Ncf, Strategy::Standalone),
    ] {
        let session = trained(model, strategy, 1);
        let requests: Vec<RecommendRequest> = (0..session.split().num_users())
            .map(|u| {
                let request = RecommendRequest::new(u).with_k(1 + u % 17);
                match u % 3 {
                    0 => request.with_min_popularity(2),
                    1 => request.with_filter(|item| item % 3 != 0),
                    _ => request,
                }
            })
            .chain([RecommendRequest::new(usize::MAX)])
            .collect();
        for panel_items in [7, 128, 100_000] {
            let build = |precompute: bool| {
                RecommenderBuilder::new(session.export_artifact())
                    .default_k(10)
                    .threads(2)
                    .panel_items(panel_items)
                    .precompute_item_halves(precompute)
                    .build()
                    .unwrap()
            };
            let precomputed = build(true).recommend_batch(&requests);
            let lean = build(false).recommend_batch(&requests);
            assert_eq!(precomputed.len(), lean.len());
            for (a, b) in precomputed.iter().zip(&lean) {
                assert_eq!(a.user, b.user, "{model:?}/panel {panel_items}");
                assert_eq!(a.items.len(), b.items.len());
                for (x, y) in a.items.iter().zip(&b.items) {
                    assert_eq!(x.item, y.item, "{model:?}/panel {panel_items}");
                    assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "{model:?}/panel {panel_items}"
                    );
                }
            }
        }
    }
}

#[test]
fn recommend_batch_is_bit_identical_across_thread_counts() {
    for (model, strategy) in [
        (ModelKind::Ncf, Strategy::HeteFedRec(Ablation::FULL)),
        (ModelKind::LightGcn, Strategy::HeteFedRec(Ablation::FULL)),
        (ModelKind::Ncf, Strategy::Standalone),
    ] {
        let session = trained(model, strategy, 1);
        let requests: Vec<RecommendRequest> = (0..session.split().num_users())
            .map(|u| RecommendRequest::new(u).with_k(12))
            .chain([RecommendRequest::new(usize::MAX)])
            .collect();
        let build = |threads: usize| {
            RecommenderBuilder::new(session.export_artifact())
                .default_k(12)
                .threads(threads)
                .panel_items(9)
                .build()
                .unwrap()
        };
        let reference = build(1).recommend_batch(&requests);
        for threads in [2, 8] {
            let got = build(threads).recommend_batch(&requests);
            assert_eq!(reference.len(), got.len());
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.user, b.user);
                assert_eq!(a.tier, b.tier);
                assert_eq!(a.cold_start, b.cold_start);
                assert_eq!(a.items.len(), b.items.len());
                for (x, y) in a.items.iter().zip(&b.items) {
                    assert_eq!(x.item, y.item, "{model:?}/{threads} threads");
                    assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "{model:?}/{threads} threads"
                    );
                }
            }
        }
    }
}
