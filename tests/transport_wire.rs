//! Regression tests for the std-only wire codec (`Vec<u8>` cursor
//! replacing the `bytes` crate): encode → decode must be the identity on
//! valid payloads, and `encoded_len` must equal the encoded buffer length
//! *exactly* — communication accounting in Table III depends on it.

use hetefedrec::fedsim::transport::{ClientUpdate, SparseRowUpdate};
use hetefedrec::tensor::rng::{substream, Rng, SeedStream, StdRng};

fn wire_rng(case: u64) -> StdRng {
    substream(0xB17E5, SeedStream::Custom(99), case)
}

/// Random update exercising the full format: 0–7 sparse rows of a random
/// dim (including dim 0) and 0–3 theta blocks of varying lengths, with
/// extreme float values mixed in.
fn gen_update(rng: &mut StdRng) -> ClientUpdate {
    let dim = rng.gen_range(0usize..20);
    let n_rows = rng.gen_range(0usize..8);
    let mut rows: Vec<(u32, Vec<f32>)> = (0..n_rows)
        .map(|_| {
            let delta: Vec<f32> = (0..dim)
                .map(|_| match rng.gen_range(0usize..8) {
                    0 => f32::MIN_POSITIVE,
                    1 => f32::MAX,
                    2 => -0.0,
                    _ => rng.gen_range(-10.0f32..10.0),
                })
                .collect();
            (rng.gen_range(0u32..10_000), delta)
        })
        .collect();
    rows.sort_by_key(|(r, _)| *r);
    rows.dedup_by_key(|(r, _)| *r);
    let n_thetas = rng.gen_range(0usize..4);
    let thetas: Vec<(u8, Vec<f32>)> = (0..n_thetas)
        .map(|t| {
            let len = rng.gen_range(0usize..40);
            (
                t as u8,
                (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            )
        })
        .collect();
    ClientUpdate {
        items: SparseRowUpdate::new(dim, rows),
        thetas,
    }
}

#[test]
fn encode_decode_is_identity() {
    for case in 0..200 {
        let mut rng = wire_rng(case);
        let u = gen_update(&mut rng);
        let decoded = ClientUpdate::decode(u.encode())
            .unwrap_or_else(|| panic!("case {case}: valid payload rejected"));
        assert_eq!(u, decoded, "case {case}");
    }
}

#[test]
fn encoded_len_matches_buffer_length_exactly() {
    for case in 0..200 {
        let mut rng = wire_rng(1_000 + case);
        let u = gen_update(&mut rng);
        let wire = u.encode();
        assert_eq!(
            wire.len(),
            u.encoded_len(),
            "case {case}: encoded_len out of sync with encoder ({} rows, dim {}, {} thetas)",
            u.items.rows.len(),
            u.items.dim,
            u.thetas.len()
        );
    }
}

#[test]
fn degenerate_payloads_roundtrip() {
    // Empty update.
    let empty = ClientUpdate::default();
    assert_eq!(empty.encode().len(), empty.encoded_len());
    assert_eq!(ClientUpdate::decode(empty.encode()).unwrap(), empty);

    // Rows of width zero (dim 0 is legal: a tier with no embedding delta).
    let zero_dim = ClientUpdate {
        items: SparseRowUpdate::new(0, vec![(3, vec![]), (9, vec![])]),
        thetas: vec![(0, vec![])],
    };
    assert_eq!(zero_dim.encode().len(), zero_dim.encoded_len());
    assert_eq!(ClientUpdate::decode(zero_dim.encode()).unwrap(), zero_dim);
}

#[test]
fn every_truncation_of_a_valid_payload_is_rejected() {
    let mut rng = wire_rng(7_777);
    let mut u = gen_update(&mut rng);
    // Ensure non-trivial rows and thetas so every section gets cut.
    if u.items.rows.is_empty() || u.items.dim == 0 {
        u = ClientUpdate {
            items: SparseRowUpdate::new(3, vec![(1, vec![0.5, -1.0, 2.0])]),
            thetas: vec![(0, vec![0.25; 7])],
        };
    }
    let wire = u.encode();
    for cut in 0..wire.len() {
        assert!(
            ClientUpdate::decode(&wire[..cut]).is_none(),
            "prefix of length {cut}/{} decoded successfully",
            wire.len()
        );
    }
}
